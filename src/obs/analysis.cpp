#include "obs/analysis.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/table.hpp"

namespace frieda::obs {

namespace {

/// Timestamp slop for "ends at/before" comparisons: covers the microsecond
/// rounding of the Chrome JSON round-trip plus float accumulation.
constexpr double kEps = 2e-6;

const TraceArg* find_arg(const TraceEvent& ev, const char* key) {
  for (const auto& a : ev.args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

int unit_arg(const TraceEvent& ev) {
  const auto* a = find_arg(ev, "unit");
  if (a == nullptr || a->value.empty()) return -1;
  char* end = nullptr;
  const long v = std::strtol(a->value.c_str(), &end, 10);
  return (end != nullptr && *end == '\0' && v >= 0) ? static_cast<int>(v) : -1;
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Attribution bucket of a busy span (never kIdle; idle is the remainder).
TimeCategory busy_category(const TraceEvent& ev) {
  if (ev.cat == "exec") return TimeCategory::kCompute;
  return starts_with(ev.name, "remote-read") ? TimeCategory::kTransfer
                                             : TimeCategory::kStaging;
}

/// Priority for overlap resolution: lower wins.  compute > transfer >
/// staging (real-time prefetch pipelines staging under execution; the
/// occupied worker is computing, not idle-staging).
int priority(TimeCategory c) {
  switch (c) {
    case TimeCategory::kCompute: return 0;
    case TimeCategory::kTransfer: return 1;
    case TimeCategory::kStaging: return 2;
    case TimeCategory::kIdle: return 3;
  }
  return 3;
}

struct BusyInterval {
  double start = 0.0;
  double end = 0.0;
  TimeCategory category = TimeCategory::kStaging;
};

/// A critical-path candidate: an exec/staging span clipped to the window.
struct Candidate {
  const TraceEvent* ev = nullptr;
  double start = 0.0;
  double end = 0.0;
  int unit = -1;
};

PathSegment make_wait(double start, double end) {
  PathSegment seg;
  seg.wait = true;
  seg.name = "wait";
  seg.cat = "wait";
  seg.start = start;
  seg.end = end;
  return seg;
}

PathSegment make_segment(const Candidate& c, double start, double end) {
  PathSegment seg;
  seg.name = c.ev->name;
  seg.cat = c.ev->cat;
  seg.process = c.ev->process;
  seg.track = c.ev->track;
  seg.unit = c.unit;
  seg.start = start;
  seg.end = end;
  return seg;
}

/// Backward last-finisher walk from run_end to run_start.  At each step the
/// chain extends to the unused candidate whose end is latest but not after
/// the current frontier (ties prefer the same unit, i.e. a real dependency
/// edge such as exec <- its own staging).  Gaps become wait segments, so the
/// result tiles [run_start, run_end] exactly.
std::vector<PathSegment> critical_path(std::vector<Candidate> cand, double run_start,
                                       double run_end) {
  std::vector<PathSegment> rev;
  if (run_end <= run_start) return rev;

  // Deterministic order for the walk: by end, then start, then lane.
  std::sort(cand.begin(), cand.end(), [](const Candidate& a, const Candidate& b) {
    if (a.end != b.end) return a.end < b.end;
    if (a.start != b.start) return a.start < b.start;
    if (a.ev->process != b.ev->process) return a.ev->process < b.ev->process;
    if (a.ev->track != b.ev->track) return a.ev->track < b.ev->track;
    return a.ev->name < b.ev->name;
  });
  std::vector<char> used(cand.size(), 0);

  // Latest unused candidate with end <= limit + kEps; among ends tied within
  // kEps, one matching `unit` wins (the dependency edge).
  const auto pick = [&](double limit, int unit) -> int {
    auto it = std::upper_bound(cand.begin(), cand.end(), limit + kEps,
                               [](double t, const Candidate& c) { return t < c.end; });
    int best = -1;
    for (auto i = static_cast<int>(it - cand.begin()) - 1; i >= 0; --i) {
      if (used[i]) continue;
      if (best == -1) {
        best = i;
        if (unit < 0 || cand[i].unit == unit) break;
        continue;
      }
      if (cand[i].end < cand[best].end - kEps) break;  // ties exhausted
      if (cand[i].unit == unit) {
        best = i;
        break;
      }
    }
    return best;
  };

  double t = run_end;
  int unit_pref = -1;
  while (t > run_start + kEps) {
    const int c = pick(t, unit_pref);
    if (c < 0) {
      rev.push_back(make_wait(run_start, t));
      break;
    }
    used[c] = 1;
    if (cand[c].end < t - kEps) {
      rev.push_back(make_wait(cand[c].end, t));
      t = cand[c].end;
    }
    // The segment covers up to the frontier exactly, so the chain tiles the
    // window and the durations sum to the makespan.
    const double e = t;
    const double s = std::min(std::max(cand[c].start, run_start), e);
    rev.push_back(make_segment(cand[c], s, e));
    t = s;
    unit_pref = cand[c].unit;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

/// Partition [run_start, run_end] for one worker lane into category
/// intervals.  Boundary sweep over the clipped busy intervals; each
/// elementary slice takes the highest-priority covering category, idle
/// where none covers.  Adjacent same-category slices are merged.
void sweep_worker(std::uint32_t worker, std::vector<BusyInterval> busy, double run_start,
                  double run_end, Attribution& attr, std::vector<GanttInterval>& gantt) {
  std::vector<double> points;
  points.push_back(run_start);
  points.push_back(run_end);
  for (auto& b : busy) {
    b.start = std::min(std::max(b.start, run_start), run_end);
    b.end = std::min(std::max(b.end, run_start), run_end);
    if (b.end > b.start) {
      points.push_back(b.start);
      points.push_back(b.end);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  GanttInterval open;
  bool has_open = false;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const double a = points[i];
    const double b = points[i + 1];
    if (b <= a) continue;
    TimeCategory cat = TimeCategory::kIdle;
    for (const auto& bi : busy) {
      if (bi.start <= a && bi.end >= b && priority(bi.category) < priority(cat)) {
        cat = bi.category;
      }
    }
    switch (cat) {
      case TimeCategory::kCompute: attr.compute += b - a; break;
      case TimeCategory::kTransfer: attr.transfer += b - a; break;
      case TimeCategory::kStaging: attr.staging += b - a; break;
      case TimeCategory::kIdle: attr.idle += b - a; break;
    }
    if (has_open && open.category == cat && open.end == a) {
      open.end = b;
    } else {
      if (has_open) gantt.push_back(open);
      open = {worker, cat, a, b};
      has_open = true;
    }
  }
  if (has_open) gantt.push_back(open);
}

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

const char* to_string(TimeCategory c) {
  switch (c) {
    case TimeCategory::kCompute: return "compute";
    case TimeCategory::kTransfer: return "transfer";
    case TimeCategory::kStaging: return "staging";
    case TimeCategory::kIdle: return "idle";
  }
  return "idle";
}

double Attribution::of(TimeCategory c) const {
  switch (c) {
    case TimeCategory::kCompute: return compute;
    case TimeCategory::kTransfer: return transfer;
    case TimeCategory::kStaging: return staging;
    case TimeCategory::kIdle: return idle;
  }
  return 0.0;
}

double TraceAnalysis::critical_path_seconds() const {
  double sum = 0.0;
  for (const auto& seg : critical_path) sum += seg.duration();
  return sum;
}

double TraceAnalysis::path_seconds(const std::string& cat) const {
  double sum = 0.0;
  for (const auto& seg : critical_path) {
    if (seg.cat == cat) sum += seg.duration();
  }
  return sum;
}

TraceAnalysis TraceAnalyzer::analyze(const std::vector<TraceEvent>& events) {
  TraceAnalysis out;
  out.events = events.size();
  if (events.empty()) return out;

  // Pass 1 — window, inventory, worker lanes, worker->vm mapping.
  double lo = events.front().start;
  double hi = events.front().end;
  std::set<std::uint32_t> worker_ids;
  std::map<std::uint32_t, std::set<std::uint32_t>> vm_workers;  // vm -> workers on it
  for (const auto& ev : events) {
    lo = std::min(lo, ev.start);
    hi = std::max(hi, ev.end);
    if (ev.kind == TraceEvent::Kind::kSpan) {
      ++out.spans;
      if (ev.cat == "unit") ++out.units;
      if (ev.cat == "run" && !out.anchored) {
        out.anchored = true;
        out.run_start = ev.start;
        out.run_end = ev.end;
        if (const auto* s = find_arg(ev, "net_solves")) {
          out.solver_stats = true;
          out.net_solves = std::strtoull(s->value.c_str(), nullptr, 10);
          if (const auto* f = find_arg(ev, "net_full_solves")) {
            out.net_full_solves = std::strtoull(f->value.c_str(), nullptr, 10);
          }
          if (const auto* d = find_arg(ev, "net_dirty_classes")) {
            out.net_dirty_classes = std::strtoull(d->value.c_str(), nullptr, 10);
          }
        }
        if (const auto* ci = find_arg(ev, "cp_instantiations")) {
          out.control_plane_stats = true;
          out.cp_instantiations = std::strtoull(ci->value.c_str(), nullptr, 10);
          if (const auto* ct = find_arg(ev, "cp_templated")) {
            out.cp_templated = std::strtoull(ct->value.c_str(), nullptr, 10);
          }
          if (const auto* cp = find_arg(ev, "cp_patches")) {
            out.cp_patches = std::strtoull(cp->value.c_str(), nullptr, 10);
          }
        }
        if (const auto* p50 = find_arg(ev, "latency_p50")) {
          out.latency_stats = true;
          out.latency_p50 = std::strtod(p50->value.c_str(), nullptr);
          if (const auto* p95 = find_arg(ev, "latency_p95")) {
            out.latency_p95 = std::strtod(p95->value.c_str(), nullptr);
          }
          if (const auto* p99 = find_arg(ev, "latency_p99")) {
            out.latency_p99 = std::strtod(p99->value.c_str(), nullptr);
          }
          if (const auto* tput = find_arg(ev, "sustained_tput")) {
            out.sustained_tput = std::strtod(tput->value.c_str(), nullptr);
          }
        }
        if (const auto* sb = find_arg(ev, "slo_breaches")) {
          out.slo_stats = true;
          out.slo_breach_count = std::strtoull(sb->value.c_str(), nullptr, 10);
          if (const auto* sv = find_arg(ev, "slo_violation_s")) {
            out.slo_violation_s = std::strtod(sv->value.c_str(), nullptr);
          }
        }
      }
      if (ev.cat == "slo") {
        SloBreach breach;
        breach.start = ev.start;
        breach.end = ev.end;
        if (const auto* ch = find_arg(ev, "channel")) breach.channel = ch->value;
        if (const auto* lim = find_arg(ev, "limit")) {
          breach.limit = std::strtod(lim->value.c_str(), nullptr);
        }
        if (const auto* peak = find_arg(ev, "peak")) {
          breach.peak = std::strtod(peak->value.c_str(), nullptr);
        }
        out.telemetry.breaches.push_back(std::move(breach));
      }
      if (ev.process == kWorkerTrack && (ev.cat == "exec" || ev.cat == "staging")) {
        worker_ids.insert(ev.track);
        if (ev.cat == "exec") {
          if (const auto* vm = find_arg(ev, "vm")) {
            char* end = nullptr;
            const long v = std::strtol(vm->value.c_str(), &end, 10);
            if (end != nullptr && *end == '\0' && v >= 0) {
              vm_workers[static_cast<std::uint32_t>(v)].insert(ev.track);
            }
          }
        }
      }
    } else if (ev.kind == TraceEvent::Kind::kCounter) {
      // TelemetryProbe counters: one channel per event, the single arg
      // carries the sampled value as a decimal that re-parses exactly.
      if (ev.cat == "telemetry" && !ev.args.empty()) {
        out.telemetry.series.add(ev.name, ev.start,
                                 std::strtod(ev.args.front().value.c_str(), nullptr));
      }
    } else if (ev.name == "trace-truncated") {
      if (const auto* d = find_arg(ev, "dropped_events")) {
        out.dropped_events = std::strtoull(d->value.c_str(), nullptr, 10);
      }
    }
  }
  if (!out.anchored) {
    out.run_start = lo;
    out.run_end = hi;
  }

  // Pass 2 — critical-path candidates and per-worker busy intervals.
  std::vector<Candidate> cand;
  std::map<std::uint32_t, std::vector<BusyInterval>> busy;
  for (const auto& ev : events) {
    if (ev.kind != TraceEvent::Kind::kSpan) continue;
    if (ev.cat != "exec" && ev.cat != "staging") continue;
    const double s = std::max(ev.start, out.run_start);
    const double e = std::min(ev.end, out.run_end);
    if (e < s) continue;  // entirely outside the run window
    cand.push_back({&ev, s, e, unit_arg(ev)});
    const TimeCategory cat = busy_category(ev);
    if (ev.process == kWorkerTrack) {
      busy[ev.track].push_back({s, e, cat});
    } else if (ev.process == kRunTrack) {
      // Node-level staging (stage-common / stage-node): the lane is the VM;
      // attribute the interval to every worker hosted on that VM.
      const auto it = vm_workers.find(ev.track);
      if (it != vm_workers.end()) {
        for (const auto w : it->second) busy[w].push_back({s, e, cat});
      }
    }
  }

  out.critical_path = critical_path(std::move(cand), out.run_start, out.run_end);

  for (const auto w : worker_ids) {
    WorkerUsage usage;
    usage.worker = w;
    auto it = busy.find(w);
    sweep_worker(w, it == busy.end() ? std::vector<BusyInterval>{} : std::move(it->second),
                 out.run_start, out.run_end, usage.attribution, out.gantt);
    out.totals.compute += usage.attribution.compute;
    out.totals.transfer += usage.attribution.transfer;
    out.totals.staging += usage.attribution.staging;
    out.totals.idle += usage.attribution.idle;
    out.workers.push_back(usage);
  }
  return out;
}

TraceAnalysis TraceAnalyzer::analyze(const Tracer& tracer) {
  auto analysis = analyze(tracer.events());
  if (analysis.dropped_events == 0) analysis.dropped_events = tracer.dropped_events();
  return analysis;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string render_report(const TraceAnalysis& a, std::size_t max_path_rows) {
  std::ostringstream os;
  os << "Trace analysis: makespan " << fmt("%.3f", a.makespan()) << " s"
     << (a.anchored ? "" : " (unanchored: min/max over events)") << ", "
     << a.workers.size() << " workers, " << a.units << " units, " << a.events
     << " events\n";
  if (a.truncated()) {
    os << "  WARNING: trace truncated — " << a.dropped_events
       << " events dropped at the tracer's cap; times below undercount\n";
  }
  if (a.solver_stats && a.net_solves > 0) {
    os << "Network solver: " << a.net_solves << " solves ("
       << fmt("%.1f", 100.0 * a.incremental_share()) << "% incremental, "
       << a.net_full_solves << " full, avg dirty set "
       << fmt("%.1f", a.avg_dirty_classes()) << " classes)\n";
  }
  if (a.control_plane_stats && a.cp_instantiations > 0) {
    os << "Control plane: " << a.cp_instantiations << " instantiations ("
       << fmt("%.1f", 100.0 * a.templated_share()) << "% templated, " << a.cp_patches
       << " patched)\n";
  }
  if (a.latency_stats) {
    os << "Open-loop latency: p50 " << fmt("%.3f", a.latency_p50) << " s, p95 "
       << fmt("%.3f", a.latency_p95) << " s, p99 " << fmt("%.3f", a.latency_p99)
       << " s (sustained " << fmt("%.3f", a.sustained_tput) << " units/s)\n";
  }
  if (!a.telemetry.series.empty()) {
    os << "Telemetry: " << a.telemetry.series.channels().size() << " channels, "
       << a.telemetry.series.sample_count()
       << " samples (see `frieda-trace timeline` for sparklines)\n";
  }
  if (a.slo_stats || !a.telemetry.breaches.empty()) {
    const std::size_t n =
        a.slo_stats ? a.slo_breach_count : a.telemetry.breaches.size();
    double violation = a.slo_violation_s;
    if (!a.slo_stats) {
      for (const auto& b : a.telemetry.breaches) violation += b.duration();
    }
    os << "SLO: " << n << " breach interval" << (n == 1 ? "" : "s") << ", "
       << fmt("%.3f", violation) << " s in violation\n";
    for (const auto& b : a.telemetry.breaches) {
      char line[192];
      std::snprintf(line, sizeof(line), "  [%10.3f .. %10.3f] %9.3f s  %s > %g (peak %g)\n",
                    b.start, b.end, b.duration(), b.channel.c_str(), b.limit, b.peak);
      os << line;
    }
  }

  const double ws = a.worker_seconds();
  const auto share = [&](double v) {
    return ws > 0.0 ? fmt("%.1f", 100.0 * v / ws) + "%" : "-";
  };
  TextTable attr("Time attribution (" + std::to_string(a.workers.size()) + " workers x " +
                     fmt("%.3f", a.makespan()) + " s = " + fmt("%.3f", ws) +
                     " worker-seconds)",
                 {"Category", "Seconds", "Share"});
  attr.add_row({"compute (exec)", fmt("%.3f", a.totals.compute), share(a.totals.compute)});
  attr.add_row({"network transfer (remote reads)", fmt("%.3f", a.totals.transfer),
                share(a.totals.transfer)});
  attr.add_row({"storage staging (input placement)", fmt("%.3f", a.totals.staging),
                share(a.totals.staging)});
  attr.add_row({"idle / wait", fmt("%.3f", a.totals.idle), share(a.totals.idle)});
  attr.add_row({"total", fmt("%.3f", a.totals.total()), share(a.totals.total())});
  os << attr.to_string();

  if (!a.workers.empty() && a.workers.size() <= 48) {
    TextTable per("Per-worker breakdown (seconds)",
                  {"Worker", "Compute", "Transfer", "Staging", "Idle", "Busy"});
    for (const auto& w : a.workers) {
      const auto& at = w.attribution;
      const double total = at.total();
      per.add_row({std::to_string(w.worker), fmt("%.3f", at.compute),
                   fmt("%.3f", at.transfer), fmt("%.3f", at.staging), fmt("%.3f", at.idle),
                   total > 0.0 ? fmt("%.1f", 100.0 * at.busy() / total) + "%" : "-"});
    }
    os << per.to_string();
  }

  os << "Critical path: " << fmt("%.3f", a.critical_path_seconds()) << " s in "
     << a.critical_path.size() << " segments (exec " << fmt("%.3f", a.path_seconds("exec"))
     << " s, staging " << fmt("%.3f", a.path_seconds("staging")) << " s, wait "
     << fmt("%.3f", a.path_seconds("wait")) << " s)\n";
  const std::size_t n = a.critical_path.size();
  const std::size_t head = n <= max_path_rows ? n : max_path_rows / 2;
  const std::size_t tail = n <= max_path_rows ? 0 : max_path_rows - head;
  const auto print_seg = [&](const PathSegment& seg) {
    char line[192];
    std::snprintf(line, sizeof(line), "  [%10.3f .. %10.3f] %9.3f s  %-8s %s\n", seg.start,
                  seg.end, seg.duration(), seg.cat.c_str(), seg.name.c_str());
    os << line;
  };
  for (std::size_t i = 0; i < head; ++i) print_seg(a.critical_path[i]);
  if (tail > 0) {
    os << "  ... (" << n - head - tail << " segments elided) ...\n";
    for (std::size_t i = n - tail; i < n; ++i) print_seg(a.critical_path[i]);
  }
  return os.str();
}

std::string gantt_csv(const TraceAnalysis& a) {
  std::ostringstream os;
  os << "worker,category,start_s,end_s,dur_s\n";
  os.setf(std::ios::fixed);
  os.precision(6);
  for (const auto& g : a.gantt) {
    os << g.worker << "," << to_string(g.category) << "," << g.start << "," << g.end << ","
       << (g.end - g.start) << "\n";
  }
  return os.str();
}

std::string critical_path_csv(const TraceAnalysis& a) {
  std::ostringstream os;
  os << "segment,kind,cat,name,process,track,start_s,end_s,dur_s\n";
  os.setf(std::ios::fixed);
  os.precision(6);
  for (std::size_t i = 0; i < a.critical_path.size(); ++i) {
    const auto& seg = a.critical_path[i];
    std::string name = seg.name;
    for (auto& c : name) {
      if (c == ',' || c == '\n') c = ' ';
    }
    os << i << "," << (seg.wait ? "wait" : "span") << "," << seg.cat << "," << name << ","
       << seg.process << "," << seg.track << "," << seg.start << "," << seg.end << ","
       << seg.duration() << "\n";
  }
  return os.str();
}

std::string render_timeline(const TraceAnalysis& a, std::size_t width) {
  std::ostringstream os;
  const auto& view = a.telemetry;
  if (view.empty()) {
    os << "Timeline: no telemetry counters in this trace (run without a "
          "TelemetryProbe attached)\n";
    return os.str();
  }
  if (width == 0) width = 1;

  os << "Timeline: " << view.series.channels().size() << " channels, "
     << view.series.sample_count() << " samples over ["
     << fmt("%.3f", a.run_start) << " s .. " << fmt("%.3f", a.run_end) << " s]\n";

  // One printable level per value: lowest -> ' ', highest -> '@'.
  static const char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // max ramp index

  TextTable table("Telemetry channels",
                  {"Channel", "Samples", "Min", "Mean", "Max", "Last", "Sparkline"});
  for (const auto& ch : view.series.channels()) {
    const std::size_t n = ch.v.size();
    double lo = ch.v[0], hi = ch.v[0], sum = 0.0;
    for (const double v : ch.v) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    // Resample to at most `width` columns: each column is the mean of an
    // equal share of consecutive samples.
    const std::size_t cols = std::min(n, width);
    std::string spark;
    spark.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t b0 = c * n / cols;
      const std::size_t b1 = std::max(b0 + 1, (c + 1) * n / cols);
      double bucket = 0.0;
      for (std::size_t i = b0; i < b1; ++i) bucket += ch.v[i];
      bucket /= static_cast<double>(b1 - b0);
      const std::size_t level =
          hi > lo ? static_cast<std::size_t>((bucket - lo) / (hi - lo) * kLevels + 0.5)
                  : kLevels / 2;
      spark.push_back(kRamp[std::min(level, kLevels)]);
    }
    table.add_row({ch.name, std::to_string(n), fmt("%.6g", lo),
                   fmt("%.6g", sum / static_cast<double>(n)), fmt("%.6g", hi),
                   fmt("%.6g", ch.v[n - 1]), spark});
  }
  os << table.to_string();

  if (!view.breaches.empty() || a.slo_stats) {
    double violation = a.slo_violation_s;
    if (!a.slo_stats) {
      for (const auto& b : view.breaches) violation += b.duration();
    }
    os << "SLO breaches: " << view.breaches.size() << " interval"
       << (view.breaches.size() == 1 ? "" : "s") << ", " << fmt("%.3f", violation)
       << " s in violation\n";
    for (const auto& b : view.breaches) {
      char line[192];
      std::snprintf(line, sizeof(line), "  [%10.3f .. %10.3f] %9.3f s  %s > %g (peak %g)\n",
                    b.start, b.end, b.duration(), b.channel.c_str(), b.limit, b.peak);
      os << line;
    }
  } else {
    os << "SLO breaches: none recorded\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON loader (the inverse of Tracer::chrome_json)
// ---------------------------------------------------------------------------

namespace {

/// Minimal recursive-descent JSON reader; enough for trace-event documents.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  struct Value {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    const Value* find(const char* key) const {
      for (const auto& [k, v] : object) {
        if (k == key) return &v;
      }
      return nullptr;
    }
    /// Arg values may be strings or bare numbers/bools; normalize to text.
    std::string as_text() const {
      if (type == Type::kString) return str;
      if (type == Type::kBool) return boolean ? "true" : "false";
      if (type == Type::kNumber) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number);
        return buf;
      }
      return {};
    }
  };

  Value parse() {
    Value v = value();
    skip_ws();
    FRIEDA_CHECK(pos_ == s_.size(), "trace JSON: trailing garbage at byte " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  Value value() {
    skip_ws();
    FRIEDA_CHECK(pos_ < s_.size(), "trace JSON: unexpected end of input");
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return boolean();
      case 'n': return null_value();
      default: return number();
    }
  }

  Value object() {
    Value v;
    v.type = Value::Type::kObject;
    eat('{');
    if (eat('}')) return v;
    do {
      skip_ws();
      Value key = string_value();
      FRIEDA_CHECK(eat(':'), "trace JSON: expected ':' at byte " << pos_);
      v.object.emplace_back(std::move(key.str), value());
    } while (eat(','));
    FRIEDA_CHECK(eat('}'), "trace JSON: expected '}' at byte " << pos_);
    return v;
  }

  Value array() {
    Value v;
    v.type = Value::Type::kArray;
    eat('[');
    if (eat(']')) return v;
    do {
      v.array.push_back(value());
    } while (eat(','));
    FRIEDA_CHECK(eat(']'), "trace JSON: expected ']' at byte " << pos_);
    return v;
  }

  Value string_value() {
    Value v;
    v.type = Value::Type::kString;
    FRIEDA_CHECK(eat('"'), "trace JSON: expected string at byte " << pos_);
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        FRIEDA_CHECK(pos_ < s_.size(), "trace JSON: truncated escape");
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u': {
            FRIEDA_CHECK(pos_ + 4 <= s_.size(), "trace JSON: truncated \\u escape");
            const unsigned long code =
                std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            c = static_cast<char>(code);  // our exports only escape control chars
            break;
          }
          default: FRIEDA_CHECK(false, "trace JSON: bad escape '\\" << esc << "'");
        }
      }
      v.str.push_back(c);
    }
    FRIEDA_CHECK(eat('"'), "trace JSON: unterminated string");
    return v;
  }

  Value boolean() {
    Value v;
    v.type = Value::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      FRIEDA_CHECK(false, "trace JSON: bad literal at byte " << pos_);
    }
    return v;
  }

  Value null_value() {
    FRIEDA_CHECK(s_.compare(pos_, 4, "null") == 0,
                 "trace JSON: bad literal at byte " << pos_);
    pos_ += 4;
    return {};
  }

  Value number() {
    Value v;
    v.type = Value::Type::kNumber;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    FRIEDA_CHECK(pos_ > start, "trace JSON: expected a value at byte " << start);
    v.number = std::atof(s_.substr(start, pos_ - start).c_str());
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<TraceEvent> load_chrome_trace(const std::string& json_text) {
  JsonReader reader(json_text);
  const auto doc = reader.parse();
  FRIEDA_CHECK(doc.type == JsonReader::Value::Type::kObject,
               "trace JSON: top level is not an object");
  const auto* list = doc.find("traceEvents");
  FRIEDA_CHECK(list != nullptr && list->type == JsonReader::Value::Type::kArray,
               "trace JSON: no traceEvents array");

  std::vector<TraceEvent> events;
  events.reserve(list->array.size());
  for (const auto& rec : list->array) {
    FRIEDA_CHECK(rec.type == JsonReader::Value::Type::kObject,
                 "trace JSON: traceEvents entry is not an object");
    const auto* ph = rec.find("ph");
    if (ph == nullptr || ph->str == "M") continue;  // metadata
    TraceEvent ev;
    if (const auto* name = rec.find("name")) ev.name = name->str;
    if (const auto* cat = rec.find("cat")) ev.cat = cat->str;
    if (const auto* pid = rec.find("pid")) ev.process = static_cast<std::uint32_t>(pid->number);
    if (const auto* tid = rec.find("tid")) ev.track = static_cast<std::uint32_t>(tid->number);
    const auto* ts = rec.find("ts");
    FRIEDA_CHECK(ts != nullptr, "trace JSON: event without ts");
    ev.start = ts->number / 1e6;
    if (ph->str == "X") {
      ev.kind = TraceEvent::Kind::kSpan;
      const auto* dur = rec.find("dur");
      ev.end = ev.start + (dur != nullptr ? dur->number / 1e6 : 0.0);
    } else if (ph->str == "C") {
      ev.kind = TraceEvent::Kind::kCounter;
      ev.end = ev.start;
    } else {
      ev.kind = TraceEvent::Kind::kInstant;
      ev.end = ev.start;
    }
    if (const auto* args = rec.find("args")) {
      for (const auto& [k, v] : args->object) ev.args.push_back({k, v.as_text()});
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<TraceEvent> read_chrome_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FRIEDA_CHECK(in.good(), "cannot open trace file '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  FRIEDA_CHECK(in.good() || in.eof(), "read from trace file '" << path << "' failed");
  return load_chrome_trace(buf.str());
}

}  // namespace frieda::obs
