// Structured run tracing: per-work-unit lifecycle spans, per-flow network
// spans, and controller/master protocol events, exportable as Chrome
// trace-event JSON (chrome://tracing, Perfetto) or a flat CSV.
//
// Design rules (see docs/observability.md):
//   * Opt-in.  Components hold a `Tracer*` that defaults to nullptr; every
//     tap site is guarded by that pointer, so a disabled tracer costs one
//     predictable branch and performs no string formatting on the hot path.
//   * Timestamps are plain doubles in seconds: simulation time for FriedaRun
//     traces, wall time since run start for RtEngine traces.  The exporters
//     convert to microseconds (the trace-event unit).
//   * Thread-safe: the threaded runtime records from worker threads.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace frieda::obs {

/// Well-known process ids ("pid" in the trace-event format) used to group
/// tracks.  Within a process, spans on the same track (tid) nest visually.
enum TrackGroup : std::uint32_t {
  kRunTrack = 1,      ///< controller/master protocol events and run phases
  kWorkerTrack = 2,   ///< per-worker staging/execution spans (tid = worker id)
  kUnitTrack = 3,     ///< per-unit lifecycle spans (tid = unit id)
  kNetworkTrack = 4,  ///< per-transfer flow spans (tid = destination node)
  kTelemetryTrack = 5,  ///< sampled telemetry counters (tid = 0)
};

/// One key/value annotation on an event ("args" in the trace-event format).
struct TraceArg {
  std::string key;
  std::string value;
};

/// One recorded event: a [start, end) span, an instant when end == start, or
/// a sampled counter (args hold numeric channel values at time `start`).
struct TraceEvent {
  enum class Kind { kSpan, kInstant, kCounter };
  Kind kind = Kind::kSpan;
  std::string name;
  std::string cat;                    ///< category: "unit", "pending",
                                      ///< "staging", "exec", "flow",
                                      ///< "protocol", "control"
  std::uint32_t process = kRunTrack;  ///< track group (see TrackGroup)
  std::uint32_t track = 0;            ///< lane within the group
  double start = 0.0;                 ///< seconds
  double end = 0.0;                   ///< seconds; == start for instants
  std::vector<TraceArg> args;
};

/// Append-only event recorder with Chrome trace-event and CSV exporters.
///
/// Memory is bounded: once `max_events()` events are recorded, further
/// events are counted in `dropped_events()` instead of stored, and the
/// exporters append a "trace-truncated" marker so a clipped trace is never
/// mistaken for a complete one.
class Tracer {
 public:
  /// Default event cap (~1M events; a traced fig6a run is ~10k).
  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

  /// Record a completed [start, end) span.
  void span(TraceEvent ev);

  /// Record an instantaneous event at `ev.start` (`end` is ignored).
  void instant(TraceEvent ev);

  /// Record a counter sample at `ev.start`.  Each arg is one channel whose
  /// value must format as a JSON number ("%.17g"); the Chrome exporter emits
  /// a "C" event so viewers render the args as stacked counter tracks.
  void counter(TraceEvent ev);

  /// Cap the number of stored events (0 = unbounded).  Lowering the cap
  /// does not discard already-recorded events; it only stops new ones.
  void set_max_events(std::size_t cap);
  std::size_t max_events() const;

  /// Events discarded because the cap was reached.
  std::uint64_t dropped_events() const;

  /// Snapshot of every recorded event, in insertion order.
  std::vector<TraceEvent> events() const;

  /// Total number of recorded events (spans + instants).
  std::size_t event_count() const;

  /// Number of recorded span events with category `cat`.
  std::size_t span_count(const std::string& cat) const;

  /// Serialize as Chrome trace-event JSON ("traceEvents" array of complete
  /// "X" spans and "i" instants, microsecond timestamps, plus process-name
  /// metadata), loadable in chrome://tracing and Perfetto.
  std::string chrome_json() const;

  /// Serialize as a flat CSV, one row per recorded event:
  /// kind,name,cat,process,track,start_s,end_s,dur_s,args ("k=v;k=v").
  std::string csv() const;

  /// Write chrome_json() / csv() to a file (throws FriedaError on failure).
  void write_chrome_json(const std::string& path) const;
  void write_csv(const std::string& path) const;

 private:
  /// True (under mutex_) when the next event must be dropped.
  bool at_cap() const { return max_events_ != 0 && events_.size() >= max_events_; }

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t max_events_ = kDefaultMaxEvents;
  std::uint64_t dropped_ = 0;
};

}  // namespace frieda::obs
