// Live run telemetry: windowed time-series probes sampled on an interval
// while a run is in flight, plus SLO targets evaluated over the recorded
// series.  Complements the post-hoc TraceAnalyzer: a TelemetryProbe is the
// measurement substrate for monitoring-driven control (rolling p99, queue
// depth) rather than an after-the-fact report.
//
// Design rules (see docs/observability.md):
//   * Opt-in, same null-guard pattern as Tracer/MetricsRegistry: backends
//     hold a `TelemetryProbe*` defaulting to nullptr and every tap site is
//     guarded, so a detached probe costs one predictable branch.
//   * Timestamps are plain doubles in seconds: simulation time when driven
//     by core::FriedaRun, wall time since run start for rt::RtEngine.
//   * Thread-safe: the threaded runtime samples from a dedicated thread
//     while the master thread records latencies.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace frieda::obs {

class Tracer;

/// Shortest round-trip decimal form of a double (std::to_chars), used for
/// every numeric value that crosses a text boundary (timeline CSV, counter
/// event args) so exported values re-parse to the identical bits.
std::string format_sample(double v);

/// Columnar timestamped samples per named channel.  Channels keep insertion
/// order; samples within a channel keep recording order (ascending time for
/// probe-driven series), so the CSV export is deterministic.
class Timeseries {
 public:
  struct Channel {
    std::string name;
    std::vector<double> t;  ///< sample times, seconds
    std::vector<double> v;  ///< sample values
  };

  /// Append one sample, creating the channel on first use.
  void add(const std::string& channel, double t, double v);

  /// Channel by name, or nullptr when never sampled.
  const Channel* find(const std::string& name) const;

  const std::vector<Channel>& channels() const { return channels_; }
  std::size_t sample_count() const;
  bool empty() const { return channels_.empty(); }

  /// Long-format CSV: "channel,t_s,value", one row per sample, channels in
  /// insertion order.  Long format because channels are sampled at
  /// different instants (latency percentiles skip empty-window ticks).
  std::string csv() const;
  void write_csv(const std::string& path) const;

 private:
  std::vector<Channel> channels_;
};

/// Ring buffer of the last W sojourns and/or last T seconds of latency
/// observations.  Percentiles over the window use the exact SampleSet
/// interpolation (numpy linear, rank = p/100*(n-1)) so a window covering
/// the whole run reproduces `RunReport.latency_p` bit for bit.
class LatencyWindow {
 public:
  /// max_count = 0 disables the count bound; max_age = 0 the age bound.
  explicit LatencyWindow(std::size_t max_count = 0, double max_age = 0.0);

  /// Record one observation at time `t` (non-decreasing across calls).
  void add(double t, double v);

  /// Drop samples with t < now - max_age (no-op when max_age == 0).
  void evict(double now);

  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }

  /// Percentile over the current window; throws FriedaError when empty.
  double percentile(double p) const;

  /// Window contents in arrival order (for reference-checking tests).
  std::vector<double> values() const;

 private:
  std::size_t max_count_;
  double max_age_;
  std::deque<std::pair<double, double>> buf_;  ///< (t, value)
};

/// One service-level objective: breach whenever `channel` samples exceed
/// `limit` (e.g. {"latency_p99", 2.0} or {"queue_depth", 16}).
struct SloTarget {
  std::string channel;
  double limit = 0.0;
};

/// One contiguous breach interval [start, end) of a target.
struct SloBreach {
  std::string channel;
  double limit = 0.0;
  double start = 0.0;
  double end = 0.0;
  double peak = 0.0;  ///< worst sample inside the interval

  double duration() const { return end - start; }
};

/// Post-run evaluation of a set of SloTargets over a Timeseries.
struct SloReport {
  struct Target {
    SloTarget target;
    std::size_t breaches = 0;
    double violation_s = 0.0;  ///< total time in violation
  };

  std::vector<Target> targets;
  std::vector<SloBreach> breaches;  ///< all intervals, chronological per target

  std::size_t total_breaches() const { return breaches.size(); }
  double total_violation_s() const;
  std::string summary() const;
};

/// Evaluates declared targets against a recorded Timeseries with
/// sample-and-hold semantics: the value at t_i holds until the next sample
/// of the same channel (or `end_time` for the last one).
class SloMonitor {
 public:
  explicit SloMonitor(std::vector<SloTarget> targets) : targets_(std::move(targets)) {}

  const std::vector<SloTarget>& targets() const { return targets_; }
  SloReport evaluate(const Timeseries& series, double end_time) const;

 private:
  std::vector<SloTarget> targets_;
};

/// Raw cumulative gauges a backend hands the probe on every tick; the probe
/// derives the per-interval deltas (throughput, solver activity) itself.
struct TelemetryTick {
  double queue_depth = 0.0;     ///< units waiting for dispatch
  double in_flight = 0.0;       ///< dispatched, not yet terminal
  double active_workers = 0.0;  ///< live worker processes
  double active_vms = 0.0;      ///< running VMs hosting workers
  double completed = 0.0;       ///< cumulative completed units
  double net_solves = 0.0;      ///< cumulative network-solver invocations
  double scale_outs = 0.0;      ///< cumulative elastic scale-out events
  double scale_ins = 0.0;       ///< cumulative elastic scale-in events
};

struct TelemetryOptions {
  double interval = 1.0;           ///< seconds between samples
  std::size_t window_count = 128;  ///< last W sojourns (0 = no count bound)
  double window_seconds = 0.0;     ///< last T seconds (0 = no age bound)
  std::vector<SloTarget> slo;      ///< targets evaluated at finish()
};

/// In-flight sampler both backends drive on a configurable interval.
/// Records every channel into a Timeseries and, when a Tracer is attached,
/// mirrors each sample as a Chrome-trace counter event on kTelemetryTrack
/// so counters interleave with the existing spans.
///
/// Channels: queue_depth, in_flight, active_workers, active_vms, completed,
/// throughput, net_solves (per-tick delta), scale_outs, scale_ins,
/// latency_p50/latency_p95/latency_p99 (windowed; skipped while the window
/// is empty).
class TelemetryProbe {
 public:
  explicit TelemetryProbe(TelemetryOptions opt = {});

  double interval() const { return opt_.interval; }
  const TelemetryOptions& options() const { return opt_; }

  /// Reset state and start a sampling epoch at `t0`.  `tracer` may be null
  /// (series-only mode); the probe never formats counter args without one.
  void begin(double t0, Tracer* tracer);

  /// Record one sojourn latency observed at time `now` (seconds).
  void observe_latency(double now, double sojourn);

  /// Sample every channel at `now` from the backend-supplied raw gauges.
  void tick(double now, const TelemetryTick& raw);

  /// Evaluate SLO targets over [t0, end_time], emit one "slo" span per
  /// breach interval into the attached tracer, and freeze the report.
  void finish(double end_time);

  const Timeseries& series() const { return series_; }
  const SloReport& slo() const { return slo_report_; }
  bool finished() const { return finished_; }
  std::size_t tick_count() const { return ticks_; }

  /// Timeline CSV (series().csv()) — schema "channel,t_s,value".
  std::string timeline_csv() const { return series_.csv(); }
  void write_timeline_csv(const std::string& path) const { series_.write_csv(path); }

 private:
  void record(const std::string& channel, double t, double v);

  TelemetryOptions opt_;
  mutable std::mutex mutex_;
  Tracer* tracer_ = nullptr;
  Timeseries series_;
  LatencyWindow window_;
  SloReport slo_report_;
  double t0_ = 0.0;
  double last_tick_ = 0.0;
  double last_completed_ = 0.0;
  double last_net_solves_ = 0.0;
  std::size_t ticks_ = 0;
  bool begun_ = false;
  bool finished_ = false;
};

}  // namespace frieda::obs
