#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace frieda::obs {

namespace {

/// JSON string escaping for names, categories, and argument values.
void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  append_json_escaped(out, s);
  out += "\"";
  return out;
}

/// Seconds -> integer microseconds (the trace-event timestamp unit).
long long micros(double seconds) {
  return static_cast<long long>(seconds * 1e6 + 0.5);
}

const char* process_name(std::uint32_t pid) {
  switch (pid) {
    case kRunTrack: return "run";
    case kWorkerTrack: return "workers";
    case kUnitTrack: return "units";
    case kNetworkTrack: return "network";
    case kTelemetryTrack: return "telemetry";
  }
  return "other";
}

/// CSV field quoting per RFC 4180 (only when the field needs it).
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

void Tracer::span(TraceEvent ev) {
  ev.kind = TraceEvent::Kind::kSpan;
  if (ev.end < ev.start) ev.end = ev.start;
  std::lock_guard<std::mutex> lock(mutex_);
  if (at_cap()) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::instant(TraceEvent ev) {
  ev.kind = TraceEvent::Kind::kInstant;
  ev.end = ev.start;
  std::lock_guard<std::mutex> lock(mutex_);
  if (at_cap()) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::counter(TraceEvent ev) {
  ev.kind = TraceEvent::Kind::kCounter;
  ev.end = ev.start;
  std::lock_guard<std::mutex> lock(mutex_);
  if (at_cap()) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::set_max_events(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_events_ = cap;
}

std::size_t Tracer::max_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_events_;
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t Tracer::span_count(const std::string& cat) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& ev : events_) {
    n += ev.kind == TraceEvent::Kind::kSpan && ev.cat == cat;
  }
  return n;
}

std::string Tracer::chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;

  // Name the track groups so Perfetto shows "units"/"workers"/... headers.
  std::uint32_t seen_mask = 0;
  for (const auto& ev : events_) {
    if (ev.process == 0 || ev.process > 31 || (seen_mask & (1u << ev.process))) continue;
    seen_mask |= 1u << ev.process;
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
    out += std::to_string(ev.process);
    out += ",\"tid\":0,\"args\":{\"name\":";
    out += json_quote(process_name(ev.process));
    out += "}}";
  }

  for (const auto& ev : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    out += json_quote(ev.name);
    out += ",\"cat\":";
    out += json_quote(ev.cat);
    out += ",\"pid\":";
    out += std::to_string(ev.process);
    out += ",\"tid\":";
    out += std::to_string(ev.track);
    out += ",\"ts\":";
    out += std::to_string(micros(ev.start));
    if (ev.kind == TraceEvent::Kind::kSpan) {
      out += ",\"ph\":\"X\",\"dur\":";
      out += std::to_string(micros(ev.end) - micros(ev.start));
    } else if (ev.kind == TraceEvent::Kind::kCounter) {
      out += ",\"ph\":\"C\"";
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i) out += ",";
        out += json_quote(ev.args[i].key);
        out += ":";
        // Counter channel values are JSON numbers (viewers reject quoted
        // counter values); everything else stays a quoted string.
        if (ev.kind == TraceEvent::Kind::kCounter) out += ev.args[i].value;
        else out += json_quote(ev.args[i].value);
      }
      out += "}";
    }
    out += "}";
  }
  if (dropped_ > 0) {
    // Truncation marker: a clipped trace must never read as a complete one.
    double last = 0.0;
    for (const auto& ev : events_) last = std::max(last, ev.end);
    if (!first) out += ",";
    out += "{\"name\":\"trace-truncated\",\"cat\":\"control\",\"pid\":";
    out += std::to_string(static_cast<std::uint32_t>(kRunTrack));
    out += ",\"tid\":0,\"ts\":";
    out += std::to_string(micros(last));
    out += ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"dropped_events\":\"";
    out += std::to_string(dropped_);
    out += "\"}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Tracer::csv() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "kind,name,cat,process,track,start_s,end_s,dur_s,args\n";
  os.setf(std::ios::fixed);
  os.precision(6);
  for (const auto& ev : events_) {
    std::string args;
    for (std::size_t i = 0; i < ev.args.size(); ++i) {
      if (i) args += ";";
      args += ev.args[i].key + "=" + ev.args[i].value;
    }
    const char* kind = ev.kind == TraceEvent::Kind::kSpan      ? "span"
                       : ev.kind == TraceEvent::Kind::kCounter ? "counter"
                                                               : "instant";
    os << kind << ","
       << csv_field(ev.name) << "," << csv_field(ev.cat) << "," << ev.process << ","
       << ev.track << "," << ev.start << "," << ev.end << "," << (ev.end - ev.start) << ","
       << csv_field(args) << "\n";
  }
  if (dropped_ > 0) {
    double last = 0.0;
    for (const auto& ev : events_) last = std::max(last, ev.end);
    os << "instant,trace-truncated,control," << static_cast<std::uint32_t>(kRunTrack)
       << ",0," << last << "," << last << ",0,dropped_events=" << dropped_ << "\n";
  }
  return os.str();
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  FRIEDA_CHECK(out.good(), "cannot open trace file '" << path << "'");
  out << chrome_json();
  FRIEDA_CHECK(out.good(), "write to trace file '" << path << "' failed");
}

void Tracer::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  FRIEDA_CHECK(out.good(), "cannot open trace file '" << path << "'");
  out << csv();
  FRIEDA_CHECK(out.good(), "write to trace file '" << path << "' failed");
}

}  // namespace frieda::obs
