#include "obs/report_sink.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace frieda::obs {

namespace {

/// "~41s" / "~3.2m" / "~1.4h" — coarse on purpose; it is an estimate.
std::string human_eta(double seconds) {
  char buf[32];
  if (seconds < 0.95) {
    std::snprintf(buf, sizeof(buf), "~%.1fs", seconds);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "~%.0fs", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof(buf), "~%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "~%.1fh", seconds / 3600.0);
  }
  return buf;
}

}  // namespace

ProgressReporter::ProgressReporter(ProgressOptions options) : options_(std::move(options)) {}

void ProgressReporter::begin(std::size_t total_jobs, double total_cost,
                             std::size_t served_jobs) {
  std::lock_guard<std::mutex> lock(mutex_);
  total_jobs_ = total_jobs;
  total_cost_ = total_cost;
  served_jobs_ = served_jobs <= total_jobs ? served_jobs : total_jobs;
  last_print_elapsed_ = -1.0;
}

void ProgressReporter::update(std::size_t completed, std::size_t in_flight,
                              double completed_cost, double elapsed_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (last_print_elapsed_ >= 0.0 &&
      elapsed_s - last_print_elapsed_ < options_.min_interval_s) {
    return;
  }
  last_print_elapsed_ = elapsed_s;

  std::ostringstream os;
  os << options_.label << ": [" << completed << "/" << total_jobs_ << "] " << in_flight
     << " in flight";
  // Cost-weighted ETA when the grid had cost estimates and some cost has
  // completed; otherwise fall back to the job-count rate over the *real*
  // jobs only.  Memoized jobs (served_jobs_) finish instantly: counting
  // them at full weight would let a duplicate-heavy grid's ETA collapse
  // toward zero while its few real jobs have barely started.
  const std::size_t real_total = total_jobs_ - served_jobs_;
  const std::size_t real_done = completed > served_jobs_ ? completed - served_jobs_ : 0;
  double done_frac = 0.0;
  if (total_cost_ > 0.0 && completed_cost > 0.0) {
    done_frac = completed_cost / total_cost_;
  } else if (real_total > 0 && real_done > 0) {
    done_frac = static_cast<double>(real_done) / static_cast<double>(real_total);
  }
  if (done_frac > 0.0 && done_frac < 1.0 && elapsed_s > 0.0) {
    os << ", eta " << human_eta(elapsed_s * (1.0 - done_frac) / done_frac);
  }
  print_line(os.str());
}

void ProgressReporter::finish(std::size_t completed, std::size_t total, double elapsed_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << options_.label << ": [" << completed << "/" << total << "] done in "
     << human_eta(elapsed_s).substr(1);  // drop the '~': this one is measured
  print_line(os.str());
}

std::size_t ProgressReporter::lines_printed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void ProgressReporter::print_line(const std::string& line) {
  std::FILE* out = options_.out != nullptr ? options_.out : stderr;
  std::fprintf(out, "%s\n", line.c_str());
  std::fflush(out);
  ++lines_;
}

double ProgressReporter::parse_interval_env(const char* text) {
  if (text == nullptr || *text == '\0') return -1.0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return -1.0;  // no digits, or trailing junk
  if (std::isnan(v) || v < 0.0 || v > kMaxIntervalSeconds) return -1.0;
  return v;  // 0 = explicit disable, otherwise a valid interval
}

std::unique_ptr<ProgressReporter> ProgressReporter::from_env() {
  const char* raw = std::getenv("FRIEDA_SWEEP_PROGRESS");
  if (raw == nullptr || raw[0] == '\0') return nullptr;
  const double v = parse_interval_env(raw);
  ProgressOptions opt;
  if (v < 0.0) {
    FLOG(kWarn, "sweep",
         "ignoring FRIEDA_SWEEP_PROGRESS='"
             << raw << "' (expected seconds in [0, "
             << static_cast<long>(kMaxIntervalSeconds)
             << "]); progress enabled at the default interval");
    return std::make_unique<ProgressReporter>(opt);
  }
  if (v == 0.0) return nullptr;  // "0" disables explicitly
  opt.min_interval_s = v;
  return std::make_unique<ProgressReporter>(opt);
}

}  // namespace frieda::obs
