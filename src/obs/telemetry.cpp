#include "obs/telemetry.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace frieda::obs {

std::string format_sample(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  FRIEDA_CHECK(res.ec == std::errc(), "format_sample: to_chars failed");
  return std::string(buf, res.ptr);
}

// ---------------------------------------------------------------------------
// Timeseries

void Timeseries::add(const std::string& channel, double t, double v) {
  for (auto& ch : channels_) {
    if (ch.name == channel) {
      ch.t.push_back(t);
      ch.v.push_back(v);
      return;
    }
  }
  Channel ch;
  ch.name = channel;
  ch.t.push_back(t);
  ch.v.push_back(v);
  channels_.push_back(std::move(ch));
}

const Timeseries::Channel* Timeseries::find(const std::string& name) const {
  for (const auto& ch : channels_) {
    if (ch.name == name) return &ch;
  }
  return nullptr;
}

std::size_t Timeseries::sample_count() const {
  std::size_t n = 0;
  for (const auto& ch : channels_) n += ch.t.size();
  return n;
}

std::string Timeseries::csv() const {
  std::string out = "channel,t_s,value\n";
  for (const auto& ch : channels_) {
    for (std::size_t i = 0; i < ch.t.size(); ++i) {
      out += ch.name;
      out += ",";
      out += format_sample(ch.t[i]);
      out += ",";
      out += format_sample(ch.v[i]);
      out += "\n";
    }
  }
  return out;
}

void Timeseries::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  FRIEDA_CHECK(out.good(), "cannot open timeline file '" << path << "'");
  out << csv();
  FRIEDA_CHECK(out.good(), "write to timeline file '" << path << "' failed");
}

// ---------------------------------------------------------------------------
// LatencyWindow

LatencyWindow::LatencyWindow(std::size_t max_count, double max_age)
    : max_count_(max_count), max_age_(max_age) {}

void LatencyWindow::add(double t, double v) {
  buf_.emplace_back(t, v);
  if (max_count_ != 0) {
    while (buf_.size() > max_count_) buf_.pop_front();
  }
}

void LatencyWindow::evict(double now) {
  if (max_age_ <= 0.0) return;
  const double cutoff = now - max_age_;
  while (!buf_.empty() && buf_.front().first < cutoff) buf_.pop_front();
}

double LatencyWindow::percentile(double p) const {
  FRIEDA_CHECK(!buf_.empty(), "percentile of empty latency window");
  FRIEDA_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  // Exactly SampleSet::percentile over the window contents: sort, then
  // numpy-style linear interpolation at rank p/100*(n-1).
  std::vector<double> sorted;
  sorted.reserve(buf_.size());
  for (const auto& [t, v] : buf_) sorted.push_back(v);
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> LatencyWindow::values() const {
  std::vector<double> out;
  out.reserve(buf_.size());
  for (const auto& [t, v] : buf_) out.push_back(v);
  return out;
}

// ---------------------------------------------------------------------------
// SLO evaluation

double SloReport::total_violation_s() const {
  double s = 0.0;
  for (const auto& t : targets) s += t.violation_s;
  return s;
}

std::string SloReport::summary() const {
  if (targets.empty()) return "SLO: no targets declared\n";
  std::ostringstream os;
  for (const auto& t : targets) {
    char line[160];
    std::snprintf(line, sizeof(line), "SLO %s <= %g: %zu breach%s, %.3f s in violation\n",
                  t.target.channel.c_str(), t.target.limit, t.breaches,
                  t.breaches == 1 ? "" : "es", t.violation_s);
    os << line;
  }
  return os.str();
}

SloReport SloMonitor::evaluate(const Timeseries& series, double end_time) const {
  SloReport report;
  for (const auto& target : targets_) {
    SloReport::Target summary;
    summary.target = target;
    const Timeseries::Channel* ch = series.find(target.channel);
    if (ch != nullptr) {
      // Sample-and-hold: the value at t[i] governs [t[i], t[i+1]), the last
      // sample governs [t[n-1], end_time].
      SloBreach open;
      bool in_breach = false;
      for (std::size_t i = 0; i < ch->t.size(); ++i) {
        const double next = i + 1 < ch->t.size() ? ch->t[i + 1] : std::max(end_time, ch->t[i]);
        if (ch->v[i] > target.limit) {
          if (!in_breach) {
            open = SloBreach{target.channel, target.limit, ch->t[i], next, ch->v[i]};
            in_breach = true;
          } else {
            open.end = next;
            open.peak = std::max(open.peak, ch->v[i]);
          }
        } else if (in_breach) {
          ++summary.breaches;
          summary.violation_s += open.duration();
          report.breaches.push_back(open);
          in_breach = false;
        }
      }
      if (in_breach) {
        ++summary.breaches;
        summary.violation_s += open.duration();
        report.breaches.push_back(open);
      }
    }
    report.targets.push_back(std::move(summary));
  }
  return report;
}

// ---------------------------------------------------------------------------
// TelemetryProbe

TelemetryProbe::TelemetryProbe(TelemetryOptions opt) : opt_(std::move(opt)) {
  FRIEDA_CHECK(opt_.interval > 0.0, "telemetry interval must be > 0");
}

void TelemetryProbe::begin(double t0, Tracer* tracer) {
  std::lock_guard<std::mutex> lock(mutex_);
  tracer_ = tracer;
  series_ = Timeseries{};
  window_ = LatencyWindow(opt_.window_count, opt_.window_seconds);
  slo_report_ = SloReport{};
  t0_ = t0;
  last_tick_ = t0;
  last_completed_ = 0.0;
  last_net_solves_ = 0.0;
  ticks_ = 0;
  begun_ = true;
  finished_ = false;
}

void TelemetryProbe::observe_latency(double now, double sojourn) {
  std::lock_guard<std::mutex> lock(mutex_);
  window_.add(now, sojourn);
}

void TelemetryProbe::record(const std::string& channel, double t, double v) {
  series_.add(channel, t, v);
  if (tracer_ != nullptr) {
    TraceEvent ev;
    ev.name = channel;
    ev.cat = "telemetry";
    ev.process = kTelemetryTrack;
    ev.track = 0;
    ev.start = t;
    ev.args.push_back({channel, format_sample(v)});
    tracer_->counter(std::move(ev));
  }
}

void TelemetryProbe::tick(double now, const TelemetryTick& raw) {
  std::lock_guard<std::mutex> lock(mutex_);
  FRIEDA_CHECK(begun_, "TelemetryProbe::tick before begin()");
  // Sample times are strictly increasing: a final flush that lands exactly
  // on the last scheduled tick is a no-op instead of a duplicate column.
  if (ticks_ > 0 && now <= last_tick_) return;
  window_.evict(now);

  record("queue_depth", now, raw.queue_depth);
  record("in_flight", now, raw.in_flight);
  record("active_workers", now, raw.active_workers);
  record("active_vms", now, raw.active_vms);
  record("completed", now, raw.completed);
  const double dt = now - last_tick_;
  if (dt > 0.0) {
    record("throughput", now, (raw.completed - last_completed_) / dt);
  }
  record("net_solves", now, raw.net_solves - last_net_solves_);
  record("scale_outs", now, raw.scale_outs);
  record("scale_ins", now, raw.scale_ins);
  if (!window_.empty()) {
    record("latency_p50", now, window_.percentile(50.0));
    record("latency_p95", now, window_.percentile(95.0));
    record("latency_p99", now, window_.percentile(99.0));
  }

  last_tick_ = now;
  last_completed_ = raw.completed;
  last_net_solves_ = raw.net_solves;
  ++ticks_;
}

void TelemetryProbe::finish(double end_time) {
  std::lock_guard<std::mutex> lock(mutex_);
  FRIEDA_CHECK(begun_, "TelemetryProbe::finish before begin()");
  if (finished_) return;
  slo_report_ = SloMonitor(opt_.slo).evaluate(series_, end_time);
  if (tracer_ != nullptr) {
    for (const auto& breach : slo_report_.breaches) {
      std::uint32_t lane = 0;
      for (std::size_t i = 0; i < opt_.slo.size(); ++i) {
        if (opt_.slo[i].channel == breach.channel) lane = static_cast<std::uint32_t>(i);
      }
      TraceEvent ev;
      ev.name = "slo-breach";
      ev.cat = "slo";
      ev.process = kTelemetryTrack;
      ev.track = lane;
      ev.start = breach.start;
      ev.end = breach.end;
      ev.args.push_back({"channel", breach.channel});
      ev.args.push_back({"limit", format_sample(breach.limit)});
      ev.args.push_back({"peak", format_sample(breach.peak)});
      tracer_->span(std::move(ev));
    }
  }
  finished_ = true;
}

}  // namespace frieda::obs
