#include "common/hash.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace frieda {

namespace {

// SplitMix64 finalizer (same constants as common/rng.cpp and exp/sweep.cpp):
// full-avalanche mixing of one word.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Per-absorption type tags; part of the stable encoding, never reorder.
constexpr std::uint64_t kTagU64 = 0x01;
constexpr std::uint64_t kTagI64 = 0x02;
constexpr std::uint64_t kTagBool = 0x03;
constexpr std::uint64_t kTagF64 = 0x04;
constexpr std::uint64_t kTagStr = 0x05;

}  // namespace

std::string Fingerprint::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) out[15 - i] = digits[(hi >> (4 * i)) & 0xf];
  for (int i = 0; i < 16; ++i) out[31 - i] = digits[(lo >> (4 * i)) & 0xf];
  return out;
}

StableHasher::StableHasher()
    // Distinctly keyed lanes (hex digits of pi and e); the two lanes see the
    // same words but from unrelated starting states, giving 128 usable bits.
    : a_(0x243f6a8885a308d3ull), b_(0xb7e151628aed2a6bull) {}

void StableHasher::absorb(std::uint64_t word) {
  // Each lane folds the word in with its own odd multiplier, then runs the
  // full finalizer so every absorbed bit avalanches before the next word.
  a_ = mix64((a_ + word) * 0x9e3779b97f4a7c15ull);
  b_ = mix64((b_ ^ word) * 0xc2b2ae3d27d4eb4full);
}

StableHasher& StableHasher::mix_u64(std::uint64_t v) {
  absorb(kTagU64);
  absorb(v);
  return *this;
}

StableHasher& StableHasher::mix_i64(std::int64_t v) {
  absorb(kTagI64);
  absorb(static_cast<std::uint64_t>(v));
  return *this;
}

StableHasher& StableHasher::mix_bool(bool v) {
  absorb(kTagBool);
  absorb(v ? 1 : 0);
  return *this;
}

StableHasher& StableHasher::mix_f64(double v) {
  if (v == 0.0) v = 0.0;  // fold -0.0 (compares equal) onto +0.0
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  absorb(kTagF64);
  absorb(bits);
  return *this;
}

StableHasher& StableHasher::mix_str(std::string_view v) {
  absorb(kTagStr);
  absorb(v.size());
  // Little-endian 8-byte packing, explicit so the encoding does not depend
  // on host byte order; the final partial chunk is zero-padded (safe because
  // the length was absorbed first).
  for (std::size_t i = 0; i < v.size(); i += 8) {
    std::uint64_t word = 0;
    const std::size_t n = std::min<std::size_t>(8, v.size() - i);
    for (std::size_t k = 0; k < n; ++k) {
      word |= static_cast<std::uint64_t>(static_cast<unsigned char>(v[i + k])) << (8 * k);
    }
    absorb(word);
  }
  return *this;
}

Fingerprint StableHasher::digest() const {
  // Cross-mix the lanes on the way out so digest bits depend on both.
  return {mix64(a_ ^ (b_ >> 32)), mix64(b_ ^ (a_ << 32) ^ 0x9e3779b97f4a7c15ull)};
}

}  // namespace frieda
