// CSV writer used by bench harnesses to dump series for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace frieda {

/// Row-oriented CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Construct with a header; every appended row must match its width.
  explicit CsvWriter(std::vector<std::string> header);

  /// Append a row of already-formatted cells.
  void add_row(std::vector<std::string> row);

  /// Convenience: append a row of doubles (formatted with %.6g).
  void add_row_nums(const std::vector<double>& row);

  /// Number of data rows appended.
  std::size_t rows() const { return rows_.size(); }

  /// Serialize header + rows.
  std::string to_string() const;

  /// Write to a stream.
  void write(std::ostream& os) const;

  /// Write to a file path; throws FriedaError on I/O failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace frieda
