#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace frieda {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const { return mean() == 0.0 ? 0.0 : stddev() / mean(); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ = (na * mean_ + nb * other.mean_) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleSet::percentile(double p) const {
  FRIEDA_CHECK(!samples_.empty(), "percentile of empty sample set");
  FRIEDA_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::lock_guard<std::mutex> lock(sort_mutex_);
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  FRIEDA_CHECK(bins > 0 && hi > lo, "histogram needs bins>0 and hi>lo");
}

void Histogram::add(double x) {
  ++total_;
  const double frac = (x - lo_) / (hi_ - lo_);
  if (frac < 0.0) {
    ++underflow_;
    return;
  }
  if (frac >= 1.0) {
    ++overflow_;
    return;
  }
  std::size_t i = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  i = std::min(i, counts_.size() - 1);
  ++counts_[i];
}

std::size_t Histogram::bucket(std::size_t i) const {
  FRIEDA_CHECK(i < counts_.size(), "bucket index out of range");
  return counts_[i];
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  const double bw = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * width / peak;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "[" << (lo_ + bw * static_cast<double>(i)) << ", "
       << (lo_ + bw * static_cast<double>(i + 1)) << ") " << std::string(bar, '#') << " "
       << counts_[i] << "\n";
  }
  if (underflow_ > 0) os << "< " << lo_ << " (underflow) " << underflow_ << "\n";
  if (overflow_ > 0) os << ">= " << hi_ << " (overflow) " << overflow_ << "\n";
  return os.str();
}

}  // namespace frieda
