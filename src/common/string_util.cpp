#include "common/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace frieda::strutil {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string strip_comment(const std::string& s, char comment_char) {
  const auto pos = s.find(comment_char);
  return pos == std::string::npos ? s : s.substr(0, pos);
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += delim;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::optional<std::int64_t> to_int(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (errno != 0 || end != t.c_str() + t.size()) return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> to_double(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (errno != 0 || end != t.c_str() + t.size()) return std::nullopt;
  return v;
}

std::optional<bool> to_bool(const std::string& s) {
  const std::string t = lower(trim(s));
  if (t == "true" || t == "yes" || t == "on" || t == "1") return true;
  if (t == "false" || t == "no" || t == "off" || t == "0") return false;
  return std::nullopt;
}

std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  return buf;
}

std::string human_seconds(double seconds) {
  char buf[48];
  if (seconds >= 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  } else if (seconds >= 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace frieda::strutil
