// Running statistics and simple histograms for run reports and benchmarks.
#pragma once

#include <cstddef>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

namespace frieda {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Arithmetic mean (0 when empty).
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Coefficient of variation (stddev/mean, 0 when mean is 0).
  double cv() const;

  /// Smallest observation (+inf when empty).
  double min() const { return min_; }

  /// Largest observation (-inf when empty).
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects raw samples and answers percentile queries (sorts lazily).
///
/// Thread contract: like a standard container, writers (`add`) require
/// exclusive access — but any number of threads may call the const readers
/// (`percentile`, `median`, `mean`, ...) concurrently.  The lazily sorted
/// cache behind `percentile` is guarded by an internal mutex, so shared
/// read-only sets (e.g. sweep threads reading a run's latency percentiles)
/// are race-free.
class SampleSet {
 public:
  SampleSet() = default;
  SampleSet(const SampleSet& other) : samples_(other.samples_) {}
  SampleSet& operator=(const SampleSet& other) {
    if (this != &other) {
      samples_ = other.samples_;
      sorted_.clear();
      sorted_valid_ = false;
    }
    return *this;
  }
  SampleSet(SampleSet&& other) noexcept
      : samples_(std::move(other.samples_)),
        sorted_(std::move(other.sorted_)),
        sorted_valid_(other.sorted_valid_) {}
  SampleSet& operator=(SampleSet&& other) noexcept {
    if (this != &other) {
      samples_ = std::move(other.samples_);
      sorted_ = std::move(other.sorted_);
      sorted_valid_ = other.sorted_valid_;
    }
    return *this;
  }

  /// Add one sample (exclusive access required, like vector::push_back).
  void add(double x);

  /// Number of samples.
  std::size_t count() const { return samples_.size(); }

  /// p in [0,100]; linearly interpolated percentile over the sorted samples
  /// (rank = p/100 * (n-1), fractional ranks interpolate between neighbors —
  /// numpy's default).  p=0 is the minimum, p=100 the maximum.  Throws on an
  /// empty set.  Safe to call from many threads concurrently.
  double percentile(double p) const;

  /// Median (50th percentile).
  double median() const { return percentile(50.0); }

  /// Mean of all samples (0 when empty).
  double mean() const;

  /// Access raw samples (unsorted insertion order).
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  // Sorted-view cache: built on the first percentile query after an add,
  // under sort_mutex_ so concurrent const readers never race on it.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  mutable std::mutex sort_mutex_;
};

/// Fixed-width histogram over [lo, hi).  Values outside the range are NOT
/// folded into the edge bins — they are tallied in separate underflow
/// (x < lo) and overflow (x >= hi) counters, so outliers never distort the
/// in-range distribution.  `total()` counts every observation, including
/// the out-of-range ones.
class Histogram {
 public:
  /// Construct with `bins` equal-width buckets over [lo, hi). Requires bins>0, hi>lo.
  Histogram(double lo, double hi, std::size_t bins);

  /// Add one observation.
  void add(double x);

  /// Count in bucket i.
  std::size_t bucket(std::size_t i) const;

  /// Number of buckets.
  std::size_t buckets() const { return counts_.size(); }

  /// Total observations (in-range + underflow + overflow).
  std::size_t total() const { return total_; }

  /// Observations below lo (not counted in any bucket).
  std::size_t underflow() const { return underflow_; }

  /// Observations at or above hi (not counted in any bucket).
  std::size_t overflow() const { return overflow_; }

  /// Observations that landed inside [lo, hi).
  std::size_t in_range() const { return total_ - underflow_ - overflow_; }

  /// Render a compact ASCII bar chart (for bench diagnostics).
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace frieda
