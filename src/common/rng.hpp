// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulator (task service times, file sizes,
// failure times) draws from an Rng seeded from the scenario configuration, so
// a scenario is exactly reproducible: same seed => bit-identical event
// timeline.  The generator is xoshiro256** (public domain, Blackman/Vigna),
// seeded through SplitMix64; it is fast, has 256-bit state, and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

namespace frieda {

/// Deterministic random number generator with convenience distributions.
class Rng {
 public:
  /// Construct from a 64-bit seed (expanded through SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal parameterized by the *target* mean and coefficient of
  /// variation of the resulting distribution (not of the underlying normal).
  /// Used for skewed task service times (BLAST match-dependent cost).
  double lognormal_mean_cv(double mean, double cv);

  /// Exponential with the given rate (events per unit time). Rate must be > 0.
  double exponential(double rate);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Pick an index in [0, n) uniformly. Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher–Yates shuffle of a vector, in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork();

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace frieda
