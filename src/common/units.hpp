// Strong-ish unit helpers used throughout the FRIEDA codebase.
//
// Simulation time is a double in seconds; data sizes are unsigned 64-bit
// byte counts; bandwidth is bytes per second (double).  We deliberately keep
// these as plain arithmetic types for performance in the discrete-event hot
// path, and provide named constructors/constants so call sites stay readable
// ("8 * MiB", "mbps(100)") and unit mistakes stay visible in review.
#pragma once

#include <cstdint>

namespace frieda {

/// Simulation time in seconds.
using SimTime = double;

/// Data size in bytes.
using Bytes = std::uint64_t;

/// Bandwidth in bytes per second.
using Bandwidth = double;

inline constexpr Bytes KB = 1000ull;
inline constexpr Bytes MB = 1000ull * 1000ull;
inline constexpr Bytes GB = 1000ull * 1000ull * 1000ull;
inline constexpr Bytes KiB = 1024ull;
inline constexpr Bytes MiB = 1024ull * 1024ull;
inline constexpr Bytes GiB = 1024ull * 1024ull * 1024ull;

/// Convert a link rate expressed in megabits per second to bytes per second.
/// The paper provisions 100 Mbps links between ExoGENI nodes (Section IV.A).
constexpr Bandwidth mbps(double megabits_per_second) {
  return megabits_per_second * 1e6 / 8.0;
}

/// Convert a rate in gigabits per second to bytes per second.
constexpr Bandwidth gbps(double gigabits_per_second) {
  return gigabits_per_second * 1e9 / 8.0;
}

/// Convert a rate in megabytes per second to bytes per second.
constexpr Bandwidth mBps(double megabytes_per_second) {
  return megabytes_per_second * 1e6;
}

/// Time it takes to move `bytes` at `rate` bytes/second (rate must be > 0).
constexpr SimTime transfer_seconds(Bytes bytes, Bandwidth rate) {
  return static_cast<double>(bytes) / rate;
}

/// Seconds expressed in minutes, for readable scenario configuration.
constexpr SimTime minutes(double m) { return m * 60.0; }

/// Seconds expressed in hours.
constexpr SimTime hours(double h) { return h * 3600.0; }

}  // namespace frieda
