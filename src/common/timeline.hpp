// Interval timeline for run decomposition.
//
// Records labeled [t0, t1) activity intervals (transfers, task executions,
// staging phases) and answers the questions the paper's Figure 6 asks:
// how much wall time was spent moving data, executing, and how much of the
// two overlapped (the real-time strategy's advantage).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace frieda {

/// Activity categories tracked during a run.
enum class ActivityKind {
  kTransfer,  ///< network staging / data movement
  kCompute,   ///< program instance execution
  kStage,     ///< coarse phase markers
};

/// One recorded activity interval.
struct ActivityInterval {
  ActivityKind kind = ActivityKind::kTransfer;
  SimTime start = 0.0;
  SimTime end = 0.0;
  std::string label;
};

/// Append-only interval log with union-length queries.
class Timeline {
 public:
  /// Record one interval (end >= start enforced).
  void record(ActivityKind kind, SimTime start, SimTime end, std::string label = {});

  /// All intervals in insertion order.
  const std::vector<ActivityInterval>& intervals() const { return intervals_; }

  /// Total length of the union of intervals of `kind` (overlaps counted once).
  SimTime busy_time(ActivityKind kind) const;

  /// Length of time where both kinds are simultaneously active.
  SimTime overlap_time(ActivityKind a, ActivityKind b) const;

  /// Earliest start / latest end over intervals of `kind`; nullopt when the
  /// timeline has no interval of that kind.  (A 0.0 sentinel would be
  /// indistinguishable from an interval that genuinely starts at t=0.)
  std::optional<SimTime> first_start(ActivityKind kind) const;
  std::optional<SimTime> last_end(ActivityKind kind) const;

  /// Number of intervals of `kind`.
  std::size_t count(ActivityKind kind) const;

 private:
  std::vector<ActivityInterval> intervals_;
};

}  // namespace frieda
