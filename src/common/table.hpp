// ASCII table rendering for benchmark harness output.
//
// Each bench binary prints the paper's rows in a table of this form so the
// reproduction can be eyeballed next to the published numbers.
#pragma once

#include <string>
#include <vector>

namespace frieda {

/// Column-aligned ASCII table with a title, header, and footer notes.
class TextTable {
 public:
  /// Construct with a title and column headers.
  TextTable(std::string title, std::vector<std::string> header);

  /// Append a row (must match header width).
  void add_row(std::vector<std::string> row);

  /// Append a free-form note printed under the table.
  void add_note(std::string note);

  /// Format a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render the full table.
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace frieda
