// Stable field-by-field hashing for configuration fingerprints.
//
// The sweep engine memoizes scenario runs by a fingerprint of their
// configuration (see docs/performance.md, "Memoization and cost-aware
// scheduling").  That key must be *stable*: independent of platform,
// pointer values, std::hash seeding, and field padding — which rules out
// hashing struct bytes.  `StableHasher` therefore absorbs one field at a
// time through a fixed, documented encoding:
//
//   * every value is reduced to a sequence of 64-bit words (strings are
//     packed little-endian 8 bytes at a time, length first);
//   * every absorption is prefixed with a type tag, so `mix(1u)` followed
//     by `mix("x")` can never collide with `mix("x")` then `mix(1u)` or
//     with a differently-typed field sequence;
//   * doubles are canonicalized (-0.0 folds to 0.0, every NaN to one
//     pattern) and absorbed by bit pattern.
//
// The digest is 128 bits (two independently keyed 64-bit SplitMix64
// lanes), which makes accidental collisions a non-issue at any realistic
// grid size (~2^64 keys for a 50% birthday bound).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace frieda {

/// 128-bit stable hash value; ordered and hashable so it can key both
/// tree and hash maps.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) { return !(a == b); }
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex digits, hi word first (for logs and cache dumps).
  std::string to_hex() const;
};

/// Accumulates typed fields into a Fingerprint.  Usage:
///
///   StableHasher h;
///   h.mix_str("als").mix_u64(opt.seed).mix_f64(opt.scale).mix_bool(opt.multicore);
///   Fingerprint key = h.digest();
///
/// digest() does not consume the hasher; further mixes continue the stream.
class StableHasher {
 public:
  StableHasher();

  StableHasher& mix_u64(std::uint64_t v);
  StableHasher& mix_i64(std::int64_t v);
  StableHasher& mix_bool(bool v);
  /// Canonicalized double: -0.0 hashes as 0.0, all NaNs hash alike.
  StableHasher& mix_f64(double v);
  StableHasher& mix_str(std::string_view v);

  Fingerprint digest() const;

 private:
  void absorb(std::uint64_t word);

  std::uint64_t a_;
  std::uint64_t b_;
};

}  // namespace frieda
