#include "common/log.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace frieda::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
std::mutex g_emit_mutex;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

bool enabled(Level lvl) { return static_cast<int>(lvl) >= g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& component, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %-10s %s\n", level_name(lvl), component.c_str(), message.c_str());
}

Level parse_level(const std::string& name) {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return Level::kInfo;
}

}  // namespace frieda::log
