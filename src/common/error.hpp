// Error-handling primitives for the FRIEDA codebase.
//
// Policy (matches the C++ Core Guidelines E.* rules): programming errors and
// violated invariants throw FriedaError via FRIEDA_CHECK; expected runtime
// failures (a worker dying, a transfer cancelled) are represented as status
// values in the relevant APIs, never as exceptions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace frieda {

/// Exception thrown on violated invariants and misconfiguration.
class FriedaError : public std::runtime_error {
 public:
  explicit FriedaError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "FRIEDA_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw FriedaError(os.str());
}
}  // namespace detail

}  // namespace frieda

/// Check an invariant; throws frieda::FriedaError with location on failure.
/// Usage: FRIEDA_CHECK(x > 0, "x must be positive, got " << x);
#define FRIEDA_CHECK(expr, ...)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream frieda_check_os_;                                 \
      frieda_check_os_ << "" __VA_ARGS__;                                  \
      ::frieda::detail::check_failed(#expr, __FILE__, __LINE__,            \
                                     frieda_check_os_.str());              \
    }                                                                      \
  } while (0)
