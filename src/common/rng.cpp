#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace frieda {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FRIEDA_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do { u1 = uniform(); } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal_mean_cv(double mean, double cv) {
  FRIEDA_CHECK(mean > 0.0 && cv >= 0.0, "lognormal needs mean>0, cv>=0");
  if (cv == 0.0) return mean;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

double Rng::exponential(double rate) {
  FRIEDA_CHECK(rate > 0.0, "exponential rate must be > 0");
  double u = 0.0;
  do { u = uniform(); } while (u <= 0.0);
  return -std::log(u) / rate;
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
  FRIEDA_CHECK(n > 0, "index() on empty range");
  return static_cast<std::size_t>(next_u64() % n);
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace frieda
