// Minimal leveled, thread-safe logger.
//
// The simulator is single-threaded but the real runtime (src/runtime) logs
// from many worker threads, so emission is serialized behind a mutex.  The
// global level is an atomic so tests can silence modules cheaply.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace frieda::log {

/// Severity levels, in increasing order of importance.
enum class Level { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Set the global minimum level that will be emitted.
void set_level(Level level);

/// Current global minimum level.
Level level();

/// Returns true when a record at `lvl` would be emitted.
bool enabled(Level lvl);

/// Emit one record; `component` is a short subsystem tag such as "master".
void write(Level lvl, const std::string& component, const std::string& message);

/// Parse a level name ("trace", "debug", "info", "warn", "error", "off").
/// Unknown names return kInfo.
Level parse_level(const std::string& name);

}  // namespace frieda::log

/// Streaming log statement: FLOG(kInfo, "master", "sent " << n << " files");
#define FLOG(lvl, component, stream_expr)                                \
  do {                                                                   \
    if (::frieda::log::enabled(::frieda::log::Level::lvl)) {             \
      std::ostringstream frieda_log_os_;                                 \
      frieda_log_os_ << stream_expr;                                     \
      ::frieda::log::write(::frieda::log::Level::lvl, (component),       \
                           frieda_log_os_.str());                        \
    }                                                                    \
  } while (0)
