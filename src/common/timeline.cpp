#include "common/timeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace frieda {

namespace {
/// Union length of a set of [start, end) intervals.
SimTime union_length(std::vector<std::pair<SimTime, SimTime>> spans) {
  if (spans.empty()) return 0.0;
  std::sort(spans.begin(), spans.end());
  SimTime total = 0.0;
  SimTime cur_lo = spans[0].first;
  SimTime cur_hi = spans[0].second;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first > cur_hi) {
      total += cur_hi - cur_lo;
      cur_lo = spans[i].first;
      cur_hi = spans[i].second;
    } else {
      cur_hi = std::max(cur_hi, spans[i].second);
    }
  }
  total += cur_hi - cur_lo;
  return total;
}
}  // namespace

void Timeline::record(ActivityKind kind, SimTime start, SimTime end, std::string label) {
  FRIEDA_CHECK(end >= start, "interval ends before it starts: [" << start << ", " << end << ")");
  intervals_.push_back(ActivityInterval{kind, start, end, std::move(label)});
}

SimTime Timeline::busy_time(ActivityKind kind) const {
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (const auto& iv : intervals_) {
    if (iv.kind == kind) spans.emplace_back(iv.start, iv.end);
  }
  return union_length(std::move(spans));
}

SimTime Timeline::overlap_time(ActivityKind a, ActivityKind b) const {
  // overlap(A, B) = |A| + |B| - |A ∪ B|
  std::vector<std::pair<SimTime, SimTime>> both;
  for (const auto& iv : intervals_) {
    if (iv.kind == a || iv.kind == b) both.emplace_back(iv.start, iv.end);
  }
  return busy_time(a) + busy_time(b) - union_length(std::move(both));
}

std::optional<SimTime> Timeline::first_start(ActivityKind kind) const {
  std::optional<SimTime> best;
  for (const auto& iv : intervals_) {
    if (iv.kind != kind) continue;
    if (!best || iv.start < *best) best = iv.start;
  }
  return best;
}

std::optional<SimTime> Timeline::last_end(ActivityKind kind) const {
  std::optional<SimTime> best;
  for (const auto& iv : intervals_) {
    if (iv.kind != kind) continue;
    if (!best || iv.end > *best) best = iv.end;
  }
  return best;
}

std::size_t Timeline::count(ActivityKind kind) const {
  std::size_t n = 0;
  for (const auto& iv : intervals_) n += (iv.kind == kind);
  return n;
}

}  // namespace frieda
