#include "common/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace frieda {

namespace {
bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& cell) {
  if (!needs_quoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  FRIEDA_CHECK(!header_.empty(), "CSV header must be non-empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  FRIEDA_CHECK(row.size() == header_.size(), "CSV row width " << row.size()
                                                 << " != header width " << header_.size());
  rows_.push_back(std::move(row));
}

void CsvWriter::add_row_nums(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

void CsvWriter::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << quote(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << quote(row[i]);
    }
    os << '\n';
  }
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  FRIEDA_CHECK(out.good(), "cannot open '" << path << "' for writing");
  write(out);
  FRIEDA_CHECK(out.good(), "write to '" << path << "' failed");
}

}  // namespace frieda
