#include "common/config.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace frieda {

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string stripped = strutil::trim(strutil::strip_comment(line, '#'));
    if (stripped.empty()) continue;
    if (stripped.front() == '[') {
      FRIEDA_CHECK(stripped.back() == ']', "unterminated section at line " << lineno);
      section = strutil::trim(stripped.substr(1, stripped.size() - 2));
      continue;
    }
    const auto eq = stripped.find('=');
    FRIEDA_CHECK(eq != std::string::npos, "expected key=value at line " << lineno
                                              << ": '" << stripped << "'");
    std::string key = strutil::trim(stripped.substr(0, eq));
    const std::string value = strutil::trim(stripped.substr(eq + 1));
    FRIEDA_CHECK(!key.empty(), "empty key at line " << lineno);
    if (!section.empty()) key = section + "." + key;
    cfg.set(key, value);
  }
  return cfg;
}

Config Config::load_file(const std::string& path) {
  std::ifstream in(path);
  FRIEDA_CHECK(in.good(), "cannot open config file '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

void Config::set(const std::string& key, const std::string& value) { values_[key] = value; }

void Config::apply_overrides(const std::vector<std::string>& overrides) {
  for (const auto& ov : overrides) {
    const auto eq = ov.find('=');
    FRIEDA_CHECK(eq != std::string::npos && eq > 0, "override must be key=value: '" << ov << "'");
    set(strutil::trim(ov.substr(0, eq)), strutil::trim(ov.substr(eq + 1)));
  }
}

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& def) const {
  const auto v = get(key);
  return v ? *v : def;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  const auto v = get(key);
  if (!v) return def;
  const auto parsed = strutil::to_int(*v);
  FRIEDA_CHECK(parsed.has_value(), "config key '" << key << "' is not an integer: '" << *v << "'");
  return *parsed;
}

double Config::get_double(const std::string& key, double def) const {
  const auto v = get(key);
  if (!v) return def;
  const auto parsed = strutil::to_double(*v);
  FRIEDA_CHECK(parsed.has_value(), "config key '" << key << "' is not a number: '" << *v << "'");
  return *parsed;
}

bool Config::get_bool(const std::string& key, bool def) const {
  const auto v = get(key);
  if (!v) return def;
  const auto parsed = strutil::to_bool(*v);
  FRIEDA_CHECK(parsed.has_value(), "config key '" << key << "' is not a boolean: '" << *v << "'");
  return *parsed;
}

std::string Config::require_string(const std::string& key) const {
  const auto v = get(key);
  FRIEDA_CHECK(v.has_value(), "missing required config key '" << key << "'");
  return *v;
}

std::int64_t Config::require_int(const std::string& key) const {
  FRIEDA_CHECK(has(key), "missing required config key '" << key << "'");
  return get_int(key, 0);
}

double Config::require_double(const std::string& key) const {
  FRIEDA_CHECK(has(key), "missing required config key '" << key << "'");
  return get_double(key, 0.0);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : values_) os << k << " = " << v << "\n";
  return os.str();
}

}  // namespace frieda
