#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace frieda {

TextTable::TextTable(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  FRIEDA_CHECK(!header_.empty(), "table header must be non-empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  FRIEDA_CHECK(row.size() == header_.size(), "table row width " << row.size()
                                                 << " != header width " << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_note(std::string note) { notes_.push_back(std::move(note)); }

std::string TextTable::num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << ' ' << row[i] << std::string(widths[i] - row[i].size(), ' ') << " |";
    }
    return os.str();
  };
  const auto rule = [&]() {
    std::ostringstream os;
    os << "+";
    for (auto w : widths) os << std::string(w + 2, '-') << "+";
    return os.str();
  };

  std::ostringstream os;
  os << "\n== " << title_ << " ==\n";
  os << rule() << "\n" << render_row(header_) << "\n" << rule() << "\n";
  for (const auto& row : rows_) os << render_row(row) << "\n";
  os << rule() << "\n";
  for (const auto& note : notes_) os << "  * " << note << "\n";
  return os.str();
}

}  // namespace frieda
