// Small string helpers shared across modules (trimming, splitting, parsing).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace frieda::strutil {

/// Remove leading and trailing ASCII whitespace.
std::string trim(const std::string& s);

/// Drop everything from the first occurrence of `comment_char` onward.
std::string strip_comment(const std::string& s, char comment_char);

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(const std::string& s, char delim);

/// Join with a delimiter.
std::string join(const std::vector<std::string>& parts, const std::string& delim);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Parse an integer; nullopt on any trailing garbage or overflow.
std::optional<std::int64_t> to_int(const std::string& s);

/// Parse a double; nullopt on any trailing garbage.
std::optional<double> to_double(const std::string& s);

/// Parse a boolean: true/false, yes/no, on/off, 1/0 (case-insensitive).
std::optional<bool> to_bool(const std::string& s);

/// Lowercase an ASCII string.
std::string lower(const std::string& s);

/// Render a byte count with a binary-prefix unit ("7.00 MiB").
std::string human_bytes(std::uint64_t bytes);

/// Render seconds as "1234.5 s" or "2.1 h" as appropriate for reports.
std::string human_seconds(double seconds);

}  // namespace frieda::strutil
