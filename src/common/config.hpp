// A small typed key/value configuration store.
//
// FRIEDA's control plane is configuration-driven (partition scheme, placement
// strategy, multicore setting, ...).  Config holds string key/value pairs with
// typed getters, can be parsed from an INI-like text ("key = value" lines,
// '#' comments, optional [section] prefixes folded into "section.key"), and
// from command-line style overrides ("key=value").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace frieda {

/// Typed key/value configuration with INI-style parsing.
class Config {
 public:
  Config() = default;

  /// Parse from INI-like text. Later keys override earlier ones.
  /// Throws FriedaError on malformed lines.
  static Config parse(const std::string& text);

  /// Load and parse a file. Throws FriedaError if unreadable.
  static Config load_file(const std::string& path);

  /// Set a key (overwrites).
  void set(const std::string& key, const std::string& value);

  /// Apply a list of "key=value" overrides (e.g. from argv).
  void apply_overrides(const std::vector<std::string>& overrides);

  /// True when the key is present.
  bool has(const std::string& key) const;

  /// Raw string lookup.
  std::optional<std::string> get(const std::string& key) const;

  /// Typed getters with defaults. Throw FriedaError on unparsable values.
  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Typed getters for required keys. Throw FriedaError when missing.
  std::string require_string(const std::string& key) const;
  std::int64_t require_int(const std::string& key) const;
  double require_double(const std::string& key) const;

  /// All keys in sorted order (for diagnostics and round-tripping).
  std::vector<std::string> keys() const;

  /// Serialize back to "key = value" lines, sorted by key.
  std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace frieda
