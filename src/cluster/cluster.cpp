#include "cluster/cluster.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace frieda::cluster {

VirtualCluster::VirtualCluster(sim::Simulation& sim, ClusterOptions options)
    : sim_(sim), options_(options) {
  net::Topology topo;
  source_node_ =
      topo.add_node("source", options_.source_nic_up, options_.source_nic_down);
  if (options_.with_storage_server) {
    storage_node_ = topo.add_node("storage", options_.storage_nic, options_.storage_nic);
  }
  network_ = std::make_unique<net::Network>(sim_, std::move(topo), options_.network_latency);
}

VmId VirtualCluster::provision_at(const InstanceType& type, net::SiteId site) {
  const net::NodeId node =
      network_->topology().add_node("vm" + std::to_string(vms_.size()), type.nic_up,
                                    type.nic_down);
  if (site != 0) network_->topology().set_site(node, site);
  if (options_.provisioned_pair_limit > 0) {
    network_->topology().set_pair_limit(source_node_, node, options_.provisioned_pair_limit);
    network_->topology().set_pair_limit(node, source_node_, options_.provisioned_pair_limit);
  }
  const VmId id = static_cast<VmId>(vms_.size());
  vms_.push_back(std::make_unique<Vm>(sim_, id, node, type));
  boot_signals_.push_back(std::make_unique<sim::Signal>(sim_));

  sim_.schedule_in(type.boot_time, [this, id] {
    auto& machine = *vms_[id];
    if (machine.state() == VmState::kProvisioning) {
      machine.mark_running();
      FLOG(kDebug, "cluster", "vm " << id << " booted at t=" << sim_.now());
      for (const auto& [token, cb] : running_observers_) cb(id);
    }
    boot_signals_[id]->trigger();
  });
  return id;
}

std::vector<VmId> VirtualCluster::provision(const InstanceType& type, std::size_t count,
                                            net::SiteId site) {
  std::vector<VmId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.push_back(provision_at(type, site));
  return ids;
}

void VirtualCluster::connect_sites(net::SiteId a, net::SiteId b, Bandwidth wan_capacity) {
  network_->topology().set_intersite_capacity(a, b, wan_capacity);
}

sim::Task<> VirtualCluster::wait_running(VmId id) {
  FRIEDA_CHECK(id < vms_.size(), "vm id out of range");
  co_await boot_signals_[id]->wait();
}

sim::Task<> VirtualCluster::wait_all_running(std::vector<VmId> ids) {
  for (VmId id : ids) co_await wait_running(id);
}

Vm& VirtualCluster::vm(VmId id) {
  FRIEDA_CHECK(id < vms_.size(), "vm id " << id << " out of range");
  return *vms_[id];
}

const Vm& VirtualCluster::vm(VmId id) const {
  FRIEDA_CHECK(id < vms_.size(), "vm id " << id << " out of range");
  return *vms_[id];
}

std::vector<VmId> VirtualCluster::all_vms() const {
  std::vector<VmId> ids(vms_.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) ids[i] = static_cast<VmId>(i);
  return ids;
}

std::vector<VmId> VirtualCluster::running_vms() const {
  std::vector<VmId> ids;
  for (const auto& machine : vms_) {
    if (machine->running()) ids.push_back(machine->id());
  }
  return ids;
}

unsigned VirtualCluster::total_running_cores() const {
  unsigned cores = 0;
  for (const auto& machine : vms_) {
    if (machine->running()) cores += machine->type().cores;
  }
  return cores;
}

void VirtualCluster::fail_vm(VmId id) {
  Vm& machine = vm(id);
  if (machine.state() == VmState::kFailed || machine.state() == VmState::kTerminated) return;
  const bool was_provisioning = machine.state() == VmState::kProvisioning;
  machine.fail();
  network_->fail_node(machine.node());
  if (was_provisioning) boot_signals_[id]->trigger();
  for (const auto& [token, cb] : failure_observers_) cb(id);
}

std::size_t VirtualCluster::on_failure(std::function<void(VmId)> cb) {
  const std::size_t token = next_observer_token_++;
  failure_observers_.emplace(token, std::move(cb));
  return token;
}

std::size_t VirtualCluster::on_running(std::function<void(VmId)> cb) {
  const std::size_t token = next_observer_token_++;
  running_observers_.emplace(token, std::move(cb));
  return token;
}

void VirtualCluster::remove_observer(std::size_t token) {
  failure_observers_.erase(token);
  running_observers_.erase(token);
}

void VirtualCluster::terminate_vm(VmId id) {
  Vm& machine = vm(id);
  machine.terminate();
  network_->fail_node(machine.node());  // release flows towards the slot
}

FailureInjector::FailureInjector(VirtualCluster& cluster) : cluster_(cluster) {}

void FailureInjector::schedule(VmId id, SimTime when) {
  cluster_.simulation().schedule_at(when, [this, id] {
    if (cluster_.vm(id).running()) {
      cluster_.fail_vm(id);
      ++injected_;
    }
  });
}

void FailureInjector::enable_random(double rate, std::size_t max_failures) {
  FRIEDA_CHECK(rate > 0.0, "failure rate must be > 0");
  auto& sim = cluster_.simulation();
  // Pre-draw the failure times so the stream is independent of how many VMs
  // exist when each trigger fires.
  Rng rng = sim.rng().fork();
  SimTime t = 0.0;
  for (std::size_t i = 0; i < max_failures; ++i) {
    t += rng.exponential(rate);
    const std::uint64_t pick = rng.next_u64();
    sim.schedule_at(t, [this, pick] {
      const auto running = cluster_.running_vms();
      if (running.empty()) return;
      const VmId victim = running[pick % running.size()];
      cluster_.fail_vm(victim);
      ++injected_;
    });
  }
}

void ActionPlan::at(SimTime when, std::function<void()> action) {
  sim_.schedule_at(when, std::move(action));
  ++count_;
}

}  // namespace frieda::cluster
