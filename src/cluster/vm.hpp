// Virtual machine model.
//
// A VM is a topology node with cores, a local disk, and a lifecycle.  Program
// execution is modeled as occupying one core for the task's service time
// (the paper clones one program instance per core, Section II.C).  A VM
// failure interrupts every running computation and in-flight local I/O, and
// invalidates the VM for future work — the transient-resource hazard FRIEDA
// is designed around.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/units.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "storage/device.hpp"

namespace frieda::cluster {

/// Identifier of a VM within its cluster.
using VmId = std::uint32_t;

/// Hardware/flavor description, mirroring cloud instance types.
/// The paper uses ExoGENI c1.xlarge: 4 QEMU cores, 4 GB memory.
struct InstanceType {
  std::string name = "c1.xlarge";
  unsigned cores = 4;
  Bytes memory = 4 * GiB;
  Bandwidth nic_up = mbps(100);
  Bandwidth nic_down = mbps(100);
  Bandwidth disk_read_bw = mBps(120);
  Bandwidth disk_write_bw = mBps(90);
  Bytes disk_capacity = 20 * GiB;
  SimTime boot_time = 30.0;  ///< provisioning + boot latency
};

/// Pre-canned instance types used across examples and benches.
InstanceType c1_xlarge();   ///< the paper's evaluation flavor
InstanceType c1_medium();   ///< 1 core variant for heterogeneity studies
InstanceType m1_large();    ///< 2 cores, bigger disk

/// VM lifecycle states.
enum class VmState {
  kProvisioning,  ///< requested, not yet booted
  kRunning,       ///< accepting work
  kFailed,        ///< crashed; local data lost
  kTerminated,    ///< released by elasticity policy
};

/// Render a state name for logs/reports.
const char* to_string(VmState state);

/// Result of a compute slice on a VM core.
struct ComputeResult {
  bool completed = true;   ///< false when the VM failed mid-run
  SimTime duration = 0.0;  ///< wall time including core queueing
};

/// One virtual machine.
class Vm {
 public:
  /// Construct a VM bound to topology node `node`.
  Vm(sim::Simulation& sim, VmId id, net::NodeId node, InstanceType type);

  VmId id() const { return id_; }
  net::NodeId node() const { return node_; }
  const InstanceType& type() const { return type_; }
  VmState state() const { return state_; }

  /// True when the VM can accept work.
  bool running() const { return state_ == VmState::kRunning; }

  /// Local disk device (valid for the VM's lifetime).
  storage::LocalDisk& disk() { return disk_; }

  /// Mark the VM booted and ready (called by the cluster after boot_time).
  void mark_running();

  /// Crash the VM: interrupt running computations and local I/O.
  /// Network flows are aborted by the cluster, which owns the Network.
  void fail();

  /// Graceful release (elastic scale-in).
  void terminate();

  /// Occupy one core for `seconds` of service time; resumes with
  /// completed=false if the VM fails first.  Queues when all cores are busy.
  sim::Task<ComputeResult> compute(SimTime seconds);

  /// Cores currently executing work.
  unsigned busy_cores() const { return busy_cores_; }

  /// Total core-seconds of completed service time.
  SimTime core_seconds_used() const { return core_seconds_used_; }

 private:
  struct Slice {
    bool done = false;
    bool ok = true;
    sim::EventQueue::Handle timer;
    std::unique_ptr<sim::Signal> signal;
  };

  sim::Simulation& sim_;
  VmId id_;
  net::NodeId node_;
  InstanceType type_;
  VmState state_ = VmState::kProvisioning;
  storage::LocalDisk disk_;
  sim::Semaphore cores_;
  unsigned busy_cores_ = 0;
  SimTime core_seconds_used_ = 0.0;
  std::unordered_set<std::shared_ptr<Slice>> active_slices_;
};

}  // namespace frieda::cluster
