#include "cluster/vm.hpp"

#include "common/error.hpp"
#include "common/log.hpp"

namespace frieda::cluster {

InstanceType c1_xlarge() { return InstanceType{}; }

InstanceType c1_medium() {
  InstanceType t;
  t.name = "c1.medium";
  t.cores = 1;
  t.memory = 2 * GiB;
  t.disk_capacity = 10 * GiB;
  return t;
}

InstanceType m1_large() {
  InstanceType t;
  t.name = "m1.large";
  t.cores = 2;
  t.memory = 8 * GiB;
  t.disk_capacity = 80 * GiB;
  return t;
}

const char* to_string(VmState state) {
  switch (state) {
    case VmState::kProvisioning: return "provisioning";
    case VmState::kRunning: return "running";
    case VmState::kFailed: return "failed";
    case VmState::kTerminated: return "terminated";
  }
  return "?";
}

Vm::Vm(sim::Simulation& sim, VmId id, net::NodeId node, InstanceType type)
    : sim_(sim),
      id_(id),
      node_(node),
      type_(std::move(type)),
      disk_(sim, type_.disk_read_bw, type_.disk_write_bw, type_.disk_capacity),
      cores_(sim, static_cast<std::int64_t>(type_.cores)) {
  FRIEDA_CHECK(type_.cores > 0, "VM needs at least one core");
}

void Vm::mark_running() {
  FRIEDA_CHECK(state_ == VmState::kProvisioning, "mark_running on " << to_string(state_) << " VM");
  state_ = VmState::kRunning;
}

void Vm::fail() {
  if (state_ == VmState::kFailed || state_ == VmState::kTerminated) return;
  FLOG(kDebug, "cluster", "vm " << id_ << " failed");
  state_ = VmState::kFailed;
  disk_.fail();
  auto slices = active_slices_;
  active_slices_.clear();
  for (const auto& slice : slices) {
    if (slice->done) continue;
    slice->done = true;
    slice->ok = false;
    if (slice->timer.pending()) sim_.cancel(slice->timer);
    slice->signal->trigger();
  }
}

void Vm::terminate() {
  if (state_ == VmState::kFailed || state_ == VmState::kTerminated) return;
  FRIEDA_CHECK(active_slices_.empty(),
               "terminate() on vm " << id_ << " with running work; drain it first");
  state_ = VmState::kTerminated;
}

sim::Task<ComputeResult> Vm::compute(SimTime seconds) {
  FRIEDA_CHECK(seconds >= 0.0, "negative compute time");
  const SimTime start = sim_.now();
  if (!running()) co_return ComputeResult{false, 0.0};

  co_await cores_.acquire();
  if (!running()) {
    cores_.release();
    co_return ComputeResult{false, sim_.now() - start};
  }

  ++busy_cores_;
  auto slice = std::make_shared<Slice>();
  slice->signal = std::make_unique<sim::Signal>(sim_);
  slice->timer = sim_.schedule_in(seconds, [slice] {
    slice->done = true;
    slice->signal->trigger();
  });
  active_slices_.insert(slice);

  co_await slice->signal->wait();

  active_slices_.erase(slice);
  --busy_cores_;
  if (slice->ok) core_seconds_used_ += seconds;
  cores_.release();
  co_return ComputeResult{slice->ok, sim_.now() - start};
}

}  // namespace frieda::cluster
