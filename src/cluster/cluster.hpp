// Virtual cluster: provisioning, lifecycle, and the data-source node.
//
// Mirrors the paper's experiment setup (Section IV.A): a set of VMs launched
// on a testbed with provisioned network bandwidth, plus the node where the
// input data lives ("the master process needs to run close to the source of
// the input data").  The cluster owns the Network and the VMs, wires VM
// failures through to the network, and notifies observers so the control
// plane can react (Section V.A, Robust/Elastic).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/vm.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace frieda::cluster {

/// Cluster-wide knobs.
struct ClusterOptions {
  Bandwidth source_nic_up = mbps(100);    ///< data-source egress (paper: 100 Mbps)
  Bandwidth source_nic_down = mbps(100);  ///< data-source ingress
  SimTime network_latency = 1e-3;         ///< per-transfer setup latency
  Bandwidth provisioned_pair_limit = 0;   ///< 0 = no per-pair caps
  bool with_storage_server = false;       ///< add a shared-volume server node
                                          ///< (iSCSI/shared FS, Section III.A)
  Bandwidth storage_nic = mbps(1000);     ///< the storage server's NIC
};

/// A provisioned set of VMs plus the data-source node, over one Network.
class VirtualCluster {
 public:
  /// Build the cluster; creates the data-source topology node immediately.
  VirtualCluster(sim::Simulation& sim, ClusterOptions options = {});

  VirtualCluster(const VirtualCluster&) = delete;
  VirtualCluster& operator=(const VirtualCluster&) = delete;

  /// The shared network.
  net::Network& network() { return *network_; }

  /// Topology node holding the input data (the master runs here).
  net::NodeId source_node() const { return source_node_; }

  /// Shared-volume server node, when configured (ClusterOptions).
  std::optional<net::NodeId> storage_node() const { return storage_node_; }

  /// The owning simulation.
  sim::Simulation& simulation() { return sim_; }

  /// Provision one VM of `type` at the data source's home site.  The VM
  /// boots asynchronously and reaches kRunning after type.boot_time; returns
  /// its id immediately.
  VmId provision(const InstanceType& type) { return provision_at(type, 0); }

  /// Provision one VM at a specific federated site.
  VmId provision_at(const InstanceType& type, net::SiteId site);

  /// Provision `count` identical VMs at `site`; returns their ids.
  std::vector<VmId> provision(const InstanceType& type, std::size_t count,
                              net::SiteId site = 0);

  /// Federate with a remote site: flows crossing the two sites share the
  /// given WAN capacity (paper Sections I/V.C, networked cloud orchestration).
  void connect_sites(net::SiteId a, net::SiteId b, Bandwidth wan_capacity);

  /// Block (in simulation time) until the VM is running, failed or terminated.
  sim::Task<> wait_running(VmId id);

  /// Block until every listed VM left kProvisioning.
  sim::Task<> wait_all_running(std::vector<VmId> ids);

  /// Access a VM; throws on bad id.
  Vm& vm(VmId id);
  const Vm& vm(VmId id) const;

  /// All VM ids ever provisioned.
  std::vector<VmId> all_vms() const;

  /// Ids of VMs currently in kRunning.
  std::vector<VmId> running_vms() const;

  /// Sum of cores across running VMs.
  unsigned total_running_cores() const;

  /// Crash a VM: interrupts compute and I/O, aborts its network flows, and
  /// notifies failure observers (the controller).
  void fail_vm(VmId id);

  /// Gracefully release a VM (elastic scale-in).  The VM must be drained.
  void terminate_vm(VmId id);

  /// Register a callback invoked when a VM fails; returns a token for
  /// remove_observer (callers must unregister before they are destroyed).
  std::size_t on_failure(std::function<void(VmId)> cb);

  /// Register a callback invoked when a VM becomes running (boot complete).
  std::size_t on_running(std::function<void(VmId)> cb);

  /// Unregister a callback returned by on_failure/on_running; idempotent.
  void remove_observer(std::size_t token);

 private:
  sim::Simulation& sim_;
  ClusterOptions options_;
  std::unique_ptr<net::Network> network_;
  net::NodeId source_node_;
  std::optional<net::NodeId> storage_node_;
  std::vector<std::unique_ptr<Vm>> vms_;
  std::vector<std::unique_ptr<sim::Signal>> boot_signals_;
  std::size_t next_observer_token_ = 1;
  std::map<std::size_t, std::function<void(VmId)>> failure_observers_;
  std::map<std::size_t, std::function<void(VmId)>> running_observers_;
};

/// Schedules VM failures: either at explicit times or stochastically.
/// The injector only fails VMs that are running when the trigger fires, and
/// never touches the data-source node.
class FailureInjector {
 public:
  /// Construct over a cluster.
  explicit FailureInjector(VirtualCluster& cluster);

  /// Fail a specific VM at an absolute time.
  void schedule(VmId id, SimTime when);

  /// Fail up to `max_failures` uniformly-chosen running VMs with i.i.d.
  /// exponential inter-failure times of the given rate (failures/second).
  /// Deterministic for the simulation seed.
  void enable_random(double rate, std::size_t max_failures);

  /// Number of failures actually injected so far.
  std::size_t injected() const { return injected_; }

 private:
  VirtualCluster& cluster_;
  std::size_t injected_ = 0;
};

/// A timed action plan (elasticity schedule): invoke a callback at times.
class ActionPlan {
 public:
  /// Construct over a simulation.
  explicit ActionPlan(sim::Simulation& sim) : sim_(sim) {}

  /// Run `action` at absolute simulation time `when`.
  void at(SimTime when, std::function<void()> action);

  /// Number of scheduled actions.
  std::size_t count() const { return count_; }

 private:
  sim::Simulation& sim_;
  std::size_t count_ = 0;
};

}  // namespace frieda::cluster
