// EXP-F7A — Figure 7a: Effect of Data Movement — ALS.
//
// "An important question for any application is whether to move the data
//  closer to the computation or vice-versa."  For the image analysis, moving
// the computation to where the data already resides wins decisively, because
// moving the bytes costs more than computing over them.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

int main() {
  PaperScenarioOptions opt;

  std::printf("Running Figure 7a scenarios (ALS, full scale)...\n");
  const auto model = std::make_shared<const ImageCompareModel>(make_als_model(opt));
  exp::ScenarioSweep sweep;
  // Move computation to data: partitions resident on worker VMs, execute there.
  const auto id_compute =
      sweep.grid().add_als(PlacementStrategy::kPrePartitionLocal, opt, model);
  // Move data to computation: stage partitions from the source, then execute.
  const auto id_data = sweep.grid().add_als(PlacementStrategy::kPrePartitionRemote, opt, model);
  // Streaming variant: computation pulls remote data at execution time.
  const auto id_stream = sweep.grid().add_als(PlacementStrategy::kRemoteRead, opt, model);
  sweep.run();
  const auto& move_compute = sweep.report(id_compute);
  const auto& move_data = sweep.report(id_data);
  const auto& stream = sweep.report(id_stream);

  TextTable table("Figure 7a: ALS — move data vs. move computation (seconds)",
                  {"Approach", "Transfer busy", "Total", "vs. move-computation"});
  const auto row = [&](const char* name, const core::RunReport& r) {
    table.add_row({name, bench::secs(r.transfer_busy()), bench::secs(r.makespan()),
                   bench::ratio(r.makespan(), move_compute.makespan())});
  };
  row("move computation to data", move_compute);
  row("move data to computation", move_data);
  row("remote read (stream data)", stream);
  table.add_note("paper shape: moving computation to the data is markedly faster for the "
                 "image analysis — the data movement cost exceeds the compute cost");
  std::printf("%s", table.to_string().c_str());

  CsvWriter csv({"approach", "transfer_busy", "total"});
  csv.add_row({"move-computation", bench::secs(move_compute.transfer_busy()),
               bench::secs(move_compute.makespan())});
  csv.add_row({"move-data", bench::secs(move_data.transfer_busy()),
               bench::secs(move_data.makespan())});
  csv.add_row({"remote-read", bench::secs(stream.transfer_busy()),
               bench::secs(stream.makespan())});
  bench::try_save(csv, "fig7a.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
