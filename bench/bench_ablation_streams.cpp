// EXP-A6 — Ablation: striped (multi-stream) transfers.
//
// The paper stages files with scp and names GridFTP as future work
// (Section II.C).  The mechanism that makes striping pay off is per-flow
// fair sharing: k parallel streams of one logical transfer claim k shares of
// a contended link.  This bench pits one striped transfer against four
// single-stream competitors on a shared 100 Mbps destination link and
// reports the achieved throughput share per stream count, plus the
// zero-contention sanity row (striping cannot beat the NIC).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

using namespace frieda;

namespace {

struct Outcome {
  double striped_seconds = 0.0;
  double competitor_seconds = 0.0;  // mean of the competitors
};

Outcome contended_run(unsigned streams) {
  sim::Simulation sim;
  net::Topology topo;
  const auto dst = topo.add_node("dst", mbps(1000), mbps(100));  // shared link
  const auto striped_src = topo.add_node("striped-src", mbps(1000), mbps(1000));
  std::vector<net::NodeId> rivals;
  for (int i = 0; i < 4; ++i) {
    rivals.push_back(topo.add_node("rival" + std::to_string(i), mbps(1000), mbps(1000)));
  }
  net::Network netw(sim, std::move(topo), 0.0);

  Outcome out;
  sim.spawn([](net::Network& n, net::NodeId src, net::NodeId d, unsigned k,
               double& seconds) -> sim::Task<> {
    const auto r = co_await n.transfer(src, d, 100 * MB, k);
    seconds = r.duration();
  }(netw, striped_src, dst, streams, out.striped_seconds));
  double rival_seconds[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) {
    sim.spawn([](net::Network& n, net::NodeId src, net::NodeId d, double& seconds)
                  -> sim::Task<> {
      const auto r = co_await n.transfer(src, d, 100 * MB, 1);
      seconds = r.duration();
    }(netw, rivals[i], dst, rival_seconds[i]));
  }
  sim.run();
  out.competitor_seconds =
      (rival_seconds[0] + rival_seconds[1] + rival_seconds[2] + rival_seconds[3]) / 4.0;
  return out;
}

double solo_run(unsigned streams) {
  sim::Simulation sim;
  net::Topology topo;
  const auto a = topo.add_node("a", mbps(100), mbps(100));
  const auto b = topo.add_node("b", mbps(100), mbps(100));
  net::Network netw(sim, std::move(topo), 0.0);
  double seconds = 0.0;
  sim.spawn([](net::Network& n, net::NodeId src, net::NodeId dst, unsigned k,
               double& s) -> sim::Task<> {
    const auto r = co_await n.transfer(src, dst, 100 * MB, k);
    s = r.duration();
  }(netw, a, b, streams, seconds));
  sim.run();
  return seconds;
}

}  // namespace

// One sweep job per stream count: the contended run plus its zero-contention
// sanity row (two independent simulations, same thread).
struct StreamsCase {
  Outcome contended;
  double solo_seconds = 0.0;
};

int main() {
  TextTable table("Ablation A6: striped transfers — 100 MB vs. 4 rivals on a shared link",
                  {"streams", "striped (s)", "rival mean (s)", "striped share",
                   "solo, no rivals (s)"});
  CsvWriter csv({"streams", "striped_seconds", "rival_seconds", "solo_seconds"});
  const unsigned stream_counts[] = {1u, 2u, 4u, 8u};
  std::vector<exp::Job<StreamsCase>> jobs;
  for (const unsigned k : stream_counts) {
    jobs.push_back({"streams" + std::to_string(k),
                    [k] { return StreamsCase{contended_run(k), solo_run(k)}; }});
  }
  exp::SweepRunner<StreamsCase> runner;
  const auto outcomes = runner.run(std::move(jobs));

  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const unsigned k = stream_counts[i];
    const auto& c = outcomes[i].get().contended;
    const double solo = outcomes[i].get().solo_seconds;
    // Effective throughput fraction of the shared 12.5 MB/s link.
    const double share = (100e6 / c.striped_seconds) / 12.5e6;
    table.add_row({std::to_string(k), bench::secs(c.striped_seconds),
                   bench::secs(c.competitor_seconds),
                   TextTable::num(share * 100.0, 1) + "%", bench::secs(solo)});
    csv.add_row_nums({static_cast<double>(k), c.striped_seconds, c.competitor_seconds, solo});
  }
  table.add_note("per-flow fair sharing gives k streams k/(k+4) of the contended link; "
                 "uncontended, striping cannot beat the NIC (solo column is flat)");
  table.add_note("this is the GridFTP-style mechanism the paper lists as future work");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_streams.csv");
  bench::print_sweep_stats(runner);
  return 0;
}
