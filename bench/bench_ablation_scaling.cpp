// EXP-A2 — Ablation of design decision D4: worker scaling, multicore
// cloning, and elasticity.
//
// Part 1 sweeps the number of worker VMs (1..8) for BLAST at 20% scale with
// multicore on and off: with cloning, 4 VMs give ~16 workers; without it,
// each VM contributes a single program instance (Section II.C).
// Part 2 shows mid-run elastic scale-out absorbing new capacity under the
// real-time strategy (and not under pre-partitioning).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

int main() {
  TextTable table("Ablation A2a: VM-count sweep, BLAST real-time (20% scale, seconds)",
                  {"Worker VMs", "multicore on", "multicore off", "cloning speedup"});
  CsvWriter csv({"vms", "multicore_on", "multicore_off"});

  PaperScenarioOptions base;
  base.scale = 0.2;
  const auto model = std::make_shared<const BlastModel>(make_blast_model(base));
  exp::ScenarioSweep sweep;
  struct Point {
    std::size_t vms;
    exp::JobId on, off;
  };
  std::vector<Point> points;
  for (const std::size_t vms : {1u, 2u, 4u, 8u}) {
    PaperScenarioOptions on = base;
    on.worker_vms = vms;
    PaperScenarioOptions off = on;
    off.multicore = false;
    points.push_back({vms, sweep.grid().add_blast(PlacementStrategy::kRealTime, on, model),
                      sweep.grid().add_blast(PlacementStrategy::kRealTime, off, model)});
  }
  sweep.run();
  for (const auto& p : points) {
    const auto& r_on = sweep.report(p.on);
    const auto& r_off = sweep.report(p.off);
    table.add_row({std::to_string(p.vms), bench::secs(r_on.makespan()),
                   bench::secs(r_off.makespan()),
                   TextTable::num(r_off.makespan() / r_on.makespan(), 2) + "x"});
    csv.add_row_nums({static_cast<double>(p.vms), r_on.makespan(), r_off.makespan()});
  }
  table.add_note("D4: per-core program cloning yields ~cores x speedup on compute-bound "
                 "work; the paper's 16-instance setup is 4 VMs with multicore on");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_scaling.csv");
  bench::print_sweep_stats(sweep);

  // ---- Part 2: elasticity ----
  const auto elastic_job = [&](exp::Grid& grid, PlacementStrategy strategy, bool elastic) {
    PaperScenarioOptions opt;
    opt.scale = 0.2;
    opt.worker_vms = 2;
    if (elastic) {
      opt.arrange = [](sim::Simulation& sim, cluster::VirtualCluster&,
                       core::FriedaRun& run) {
        sim.schedule_at(60.0, [&run] {
          auto type = cluster::c1_xlarge();
          type.boot_time = 30.0;
          run.add_vm(type);
          run.add_vm(type);
        });
      };
    }
    return grid.add_blast(strategy, opt, model);
  };

  TextTable table2("Ablation A2b: elastic scale-out at t=60 s (2 VMs -> 4 VMs)",
                   {"Strategy", "static 2 VMs", "elastic 2->4 VMs", "improvement"});
  exp::ScenarioSweep sweep2;
  const auto id_rt_static = elastic_job(sweep2.grid(), PlacementStrategy::kRealTime, false);
  const auto id_rt_elastic = elastic_job(sweep2.grid(), PlacementStrategy::kRealTime, true);
  const auto id_pre_static =
      elastic_job(sweep2.grid(), PlacementStrategy::kPrePartitionRemote, false);
  const auto id_pre_elastic =
      elastic_job(sweep2.grid(), PlacementStrategy::kPrePartitionRemote, true);
  sweep2.run();
  const auto& rt_static = sweep2.report(id_rt_static);
  const auto& rt_elastic = sweep2.report(id_rt_elastic);
  const auto& pre_static = sweep2.report(id_pre_static);
  const auto& pre_elastic = sweep2.report(id_pre_elastic);
  table2.add_row({"real-time", bench::secs(rt_static.makespan()),
                  bench::secs(rt_elastic.makespan()),
                  TextTable::num((1.0 - rt_elastic.makespan() / rt_static.makespan()) * 100,
                                 1) +
                      "%"});
  table2.add_row({"pre-partition-remote", bench::secs(pre_static.makespan()),
                  bench::secs(pre_elastic.makespan()),
                  TextTable::num(
                      (1.0 - pre_elastic.makespan() / pre_static.makespan()) * 100, 1) +
                      "%"});
  table2.add_note("real-time absorbs elastic workers automatically (Section V.A Elastic); "
                  "pre-partitioning cannot — its shares were fixed at staging time");
  std::printf("%s", table2.to_string().c_str());
  bench::print_sweep_stats(sweep2);
  return 0;
}
