// EXP-M0 — google-benchmark microbenchmarks of the substrate primitives:
// event queue throughput, coroutine channel round trips, the max-min fair
// solver, partition generation, a full small FRIEDA run per iteration,
// sweep-engine throughput (1 thread vs. a pool) on a fixed scenario grid,
// sweep memoization (duplicate-heavy grid, uncached vs. warm cache), the
// fork-based process backend on the same grid (thread vs. process), and
// steal-half dispatch on a deliberately skewed grid (pinned vs. stealing).
#include <benchmark/benchmark.h>

#include "cluster/cluster.hpp"
#include "exp/grid.hpp"
#include "frieda/assignment.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "frieda/template.hpp"
#include "net/fairshare.hpp"
#include "net/network.hpp"
#include "sim/channel.hpp"
#include "sim/simulation.hpp"
#include "workload/scenarios.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace frieda;

void BM_EventQueuePushPop(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(static_cast<double>((i * 2654435761u) % 1000), [] {});
    }
    while (!q.empty()) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulationDelays(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    auto ticker = [](sim::Simulation& s, int count) -> sim::Task<> {
      for (int i = 0; i < count; ++i) co_await s.delay(1.0);
    };
    sim.spawn(ticker(sim, n));
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimulationDelays)->Arg(1000)->Arg(10000);

void BM_ChannelRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::Channel<int> ch(sim);
    sim.spawn([](sim::Simulation& s, sim::Channel<int>& c, int count) -> sim::Task<> {
      for (int i = 0; i < count; ++i) {
        int v = i;
        co_await c.send(std::move(v));
        co_await s.delay(0.0);
      }
      c.close();
    }(sim, ch, n));
    sim.spawn([](sim::Channel<int>& c) -> sim::Task<> {
      while (co_await c.recv()) {
      }
    }(ch));
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ChannelRoundTrip)->Arg(1000);

void BM_MaxMinFairSolve(benchmark::State& state) {
  const std::size_t flows = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  std::vector<Bandwidth> caps(32);
  for (auto& c : caps) c = rng.uniform(1.0, 100.0);
  std::vector<net::FlowConstraints> constraints(flows);
  for (auto& fc : constraints) {
    fc.resources = {rng.index(32), rng.index(32)};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::max_min_fair_rates(caps, constraints));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows));
}
BENCHMARK(BM_MaxMinFairSolve)->Arg(16)->Arg(256);

void BM_NetworkManyFlows(benchmark::State& state) {
  // Many-flow fluid-model stress: a staging-like pattern where a handful of
  // data servers feed a large worker pool, with mixed destinations, payload
  // sizes and per-transfer stream counts.  With Arg(512) this puts ~1.3k
  // concurrent flows into the network at once, which is the regime the
  // flow-class coalescing / incremental-recompute fast path targets.
  const std::size_t transfers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kServers = 8;
  constexpr std::size_t kWorkers = 32;
  std::size_t flows = 0;
  for (auto _ : state) {
    sim::Simulation sim(7);
    net::Topology topo;
    for (std::size_t i = 0; i < kServers; ++i) {
      topo.add_node("srv" + std::to_string(i), gbps(1), gbps(1));
    }
    for (std::size_t i = 0; i < kWorkers; ++i) {
      topo.add_node("wrk" + std::to_string(i), mbps(100), mbps(100));
    }
    net::Network netw(sim, std::move(topo), /*latency=*/1e-3);
    Rng rng(13);
    flows = 0;
    for (std::size_t i = 0; i < transfers; ++i) {
      const auto src = static_cast<net::NodeId>(rng.index(kServers));
      const auto dst = static_cast<net::NodeId>(kServers + rng.index(kWorkers));
      const unsigned streams = 1 + static_cast<unsigned>(rng.index(4));
      const Bytes bytes = (1 + rng.index(8)) * MB;
      flows += streams;
      sim.spawn([](net::Network& n, net::NodeId s, net::NodeId d, Bytes b,
                   unsigned st) -> sim::Task<> {
        (void)co_await n.transfer(s, d, b, st);
      }(netw, src, dst, bytes, streams));
    }
    sim.run();
    benchmark::DoNotOptimize(netw.total_bytes_moved());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows));
}
BENCHMARK(BM_NetworkManyFlows)
    ->Arg(128)
    ->Arg(512)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_NetworkChurn(benchmark::State& state) {
  // Churn-heavy incremental-solver stress: a hierarchical rack topology where
  // long-lived cross-rack background flows (which chain every rack together
  // through the uplinks) coexist with rapid-fire intra-rack transfers.  Each
  // churn arrival/departure perturbs exactly one flow class while the
  // background classes are untouched, so a minority of flows change per
  // solve — the regime where dirty-set propagation beats re-solving the
  // whole network.
  const std::size_t churn = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kRacks = 48;
  constexpr std::size_t kPerRack = 4;
  const auto node = [](std::size_t rack, std::size_t i) {
    return static_cast<net::NodeId>(rack * kPerRack + i);
  };
  for (auto _ : state) {
    sim::Simulation sim(23);
    net::Topology topo;
    for (std::size_t r = 0; r < kRacks; ++r) {
      for (std::size_t i = 0; i < kPerRack; ++i) {
        const auto id = topo.add_node("r" + std::to_string(r) + "n" + std::to_string(i),
                                      gbps(1), gbps(1));
        topo.set_rack(id, static_cast<net::RackId>(r));
      }
      topo.set_rack_uplink(static_cast<net::RackId>(r), gbps(4));
    }
    net::Network netw(sim, std::move(topo), /*latency=*/1e-4);
    // Long-lived background: four streams per rack to the next rack over,
    // outlasting the entire churn phase.
    for (std::size_t r = 0; r < kRacks; ++r) {
      sim.spawn([](net::Network& n, net::NodeId s, net::NodeId d) -> sim::Task<> {
        (void)co_await n.transfer(s, d, 100 * GB, /*streams=*/4);
      }(netw, node(r, 0), node((r + 1) % kRacks, 1)));
    }
    // Churn lanes: per rack, a back-to-back sequence of small intra-rack
    // transfers — every completion immediately triggers the next arrival.
    const std::size_t per_lane = churn / kRacks;
    for (std::size_t r = 0; r < kRacks; ++r) {
      sim.spawn([](net::Network& n, net::NodeId s, net::NodeId d,
                   std::size_t count) -> sim::Task<> {
        for (std::size_t i = 0; i < count; ++i) {
          (void)co_await n.transfer(s, d, 4 * MB);
        }
      }(netw, node(r, 2), node(r, 3), per_lane));
    }
    sim.run();
    benchmark::DoNotOptimize(netw.total_bytes_moved());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(churn / kRacks * kRacks));
}
BENCHMARK(BM_NetworkChurn)->Arg(2304)->Arg(9216)->Unit(benchmark::kMillisecond);

void BM_PartitionGenerate(benchmark::State& state) {
  storage::FileCatalog cat;
  for (int i = 0; i < 2000; ++i) cat.add_file("f" + std::to_string(i), MB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::PartitionGenerator::generate(core::PartitionScheme::kPairwiseAdjacent, cat));
  }
}
BENCHMARK(BM_PartitionGenerate);

void BM_FullFriedaRun(benchmark::State& state) {
  // A complete small real-time run per iteration: controller, master,
  // 8 workers, 128 units, network staging and execution.
  for (auto _ : state) {
    sim::Simulation sim(11);
    cluster::VirtualCluster cluster(sim);
    auto type = cluster::c1_xlarge();
    type.boot_time = 0.0;
    cluster.provision(type, 2);
    workload::SyntheticParams params;
    params.file_count = 128;
    params.mean_file_bytes = MB;
    params.mean_task_seconds = 1.0;
    workload::SyntheticModel app(params);
    auto units = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                    app.catalog());
    core::RunOptions opt;
    opt.strategy = core::PlacementStrategy::kRealTime;
    core::FriedaRun run(cluster, app.catalog(), std::move(units), app,
                        core::CommandTemplate("app $inp1"), opt);
    const auto report = run.run();
    benchmark::DoNotOptimize(report.units_completed);
  }
}
BENCHMARK(BM_FullFriedaRun)->Unit(benchmark::kMillisecond);

void BM_SweepThroughput(benchmark::State& state) {
  // The tentpole measurement: a fixed 32-job BLAST grid (8 seeds x 4
  // strategies at 10% scale, one shared immutable model) executed per
  // iteration on Arg(n) pool threads.  Arg(1) is the sequential baseline;
  // the per-iteration wall time ratio is the sweep speedup.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  workload::PaperScenarioOptions base;
  base.scale = 0.1;
  const auto model =
      std::make_shared<const workload::BlastModel>(workload::make_blast_model(base));
  for (auto _ : state) {
    exp::Grid grid;
    for (std::uint64_t s = 0; s < 8; ++s) {
      auto opt = base;
      opt.seed = exp::derive_seed(2012, s);
      grid.add_blast(core::PlacementStrategy::kNoPartitionCommon, opt, model);
      grid.add_blast(core::PlacementStrategy::kPrePartitionRemote, opt, model);
      grid.add_blast(core::PlacementStrategy::kPrePartitionLocal, opt, model);
      grid.add_blast(core::PlacementStrategy::kRealTime, opt, model);
    }
    exp::SweepRunner<> runner(exp::SweepOptions{threads});
    runner.set_cache(nullptr);  // measuring execution, not memoization
    const auto outcomes = runner.run(grid.take());
    for (const auto& o : outcomes) benchmark::DoNotOptimize(o.get().units_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SweepThroughput)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()->UseRealTime();

void BM_SweepProcess(benchmark::State& state) {
  // The fork backend on the same fixed 32-job BLAST grid as
  // BM_SweepThroughput, at the same Arg(n) worker count: each job executes
  // in a forked child and ships its report back over a pipe.  The delta
  // against BM_SweepThroughput at equal Arg is the per-job isolation tax
  // (fork + serialize + deserialize + reap).  Real time is the honest
  // metric here — the process CPU clock does not include forked children.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  workload::PaperScenarioOptions base;
  base.scale = 0.1;
  const auto model =
      std::make_shared<const workload::BlastModel>(workload::make_blast_model(base));
  for (auto _ : state) {
    exp::Grid grid;
    for (std::uint64_t s = 0; s < 8; ++s) {
      auto opt = base;
      opt.seed = exp::derive_seed(2012, s);
      grid.add_blast(core::PlacementStrategy::kNoPartitionCommon, opt, model);
      grid.add_blast(core::PlacementStrategy::kPrePartitionRemote, opt, model);
      grid.add_blast(core::PlacementStrategy::kPrePartitionLocal, opt, model);
      grid.add_blast(core::PlacementStrategy::kRealTime, opt, model);
    }
    exp::SweepOptions sopt{threads};
    sopt.backend = exp::SweepBackend::kProcess;
    exp::SweepRunner<> runner(sopt);
    runner.set_cache(nullptr);  // measuring execution, not memoization
    const auto outcomes = runner.run(grid.take());
    for (const auto& o : outcomes) benchmark::DoNotOptimize(o.get().units_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SweepProcess)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SweepSteal(benchmark::State& state) {
  // Steal-half dispatch on a deliberately skewed grid: four heavy cells
  // (4x scale) land on workers 0-3 of an 8-thread pool with light cells
  // queued behind them.  Arg(0) pins every worker to its dealt share — the
  // light cells behind the heavy ones strand until their owner finishes —
  // while Arg(1) lets idle workers steal the front half of the fattest
  // backlog.  The delta is the stranded idle tail; on a single-core host
  // both run the same total work and the numbers collapse (the committed
  // BENCH_engine.json entry carries that caveat).
  const bool steal = state.range(0) == 1;
  workload::PaperScenarioOptions light;
  light.scale = 0.05;
  workload::PaperScenarioOptions heavy;
  heavy.scale = 0.2;
  const auto light_model =
      std::make_shared<const workload::BlastModel>(workload::make_blast_model(light));
  const auto heavy_model =
      std::make_shared<const workload::BlastModel>(workload::make_blast_model(heavy));
  for (auto _ : state) {
    exp::Grid grid;
    for (std::uint64_t s = 0; s < 4; ++s) {
      auto opt = heavy;
      opt.seed = exp::derive_seed(7, s);
      grid.add_blast(core::PlacementStrategy::kRealTime, opt, heavy_model);
    }
    for (std::uint64_t s = 0; s < 28; ++s) {
      auto opt = light;
      opt.seed = exp::derive_seed(11, s);
      grid.add_blast(core::PlacementStrategy::kRealTime, opt, light_model);
    }
    exp::SweepOptions sopt{8};
    sopt.steal = steal;
    exp::SweepRunner<> runner(sopt);
    runner.set_cache(nullptr);
    const auto outcomes = runner.run(grid.take());
    for (const auto& o : outcomes) benchmark::DoNotOptimize(o.get().units_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SweepSteal)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SweepMemoized(benchmark::State& state) {
  // Memoization measurement: a duplicate-heavy 32-job BLAST grid (the same
  // 4 strategy cells repeated 8 times — the shape ablation drivers produce
  // when several tables re-run a shared baseline).  Arg(0) runs with the
  // cache disabled (all 32 cells execute); Arg(1) keeps one ResultCache warm
  // across iterations, so every cell is served from cache and the duplicate
  // cells' execution cost is eliminated.  The ratio is what cross-grid
  // memoization buys; like BM_SweepThroughput it is wall-clock honest even
  // on a single-core container, since no pool scaling is involved.
  const bool memoized = state.range(0) == 1;
  workload::PaperScenarioOptions base;
  base.scale = 0.1;
  const auto model =
      std::make_shared<const workload::BlastModel>(workload::make_blast_model(base));
  exp::ResultCache<core::RunReport> cache;  // local: iteration-to-iteration warmth
  for (auto _ : state) {
    exp::Grid grid;
    for (int rep = 0; rep < 8; ++rep) {
      grid.add_blast(core::PlacementStrategy::kNoPartitionCommon, base, model);
      grid.add_blast(core::PlacementStrategy::kPrePartitionRemote, base, model);
      grid.add_blast(core::PlacementStrategy::kPrePartitionLocal, base, model);
      grid.add_blast(core::PlacementStrategy::kRealTime, base, model);
    }
    exp::SweepRunner<> runner(exp::SweepOptions{1});
    runner.set_cache(memoized ? &cache : nullptr);
    const auto outcomes = runner.run(grid.take());
    for (const auto& o : outcomes) benchmark::DoNotOptimize(o.get().units_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_SweepMemoized)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_ControlPlaneTemplate(benchmark::State& state) {
  // Control-plane cost per unit, cold vs. warm.  Cold (range(1)==0) is what
  // the first run of a scenario pays: partition generation plus a full
  // template capture — one command binding per unit, the assignment table,
  // and validation.  Warm (range(1)==1) is what every subsequent run pays:
  // a store lookup plus the instantiation copies a run actually consumes
  // (the unit list, the assignment table, one AssignWork prototype per
  // unit).  The per-item ratio is what execution templates buy.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool warm = state.range(1) == 1;
  storage::FileCatalog cat;
  cat.add_file("query.fasta", 4 * MB);
  for (std::size_t i = 0; i < n; ++i) {
    cat.add_file("db" + std::to_string(i), MB + (i % 7) * 128 * 1024);
  }
  const core::CommandTemplate command("blastall -p blastp -i $inp1 -d $inp2");
  constexpr std::size_t kWorkers = 16;
  core::TemplateStore store;
  const Fingerprint key =
      StableHasher().mix_str("bench-control-plane").mix_u64(n).digest();
  if (warm) {
    auto units = core::PartitionGenerator::generate(core::PartitionScheme::kOneToAll, cat);
    store.insert(key, core::ExecutionTemplate::capture(
                          std::move(units), command, cat, "/data", true,
                          core::AssignmentPolicy::kRoundRobin, kWorkers, 0, {}));
  }
  for (auto _ : state) {
    if (warm) {
      const auto tmpl = store.lookup(key);
      std::vector<core::WorkUnit> units = tmpl->units();
      std::vector<std::vector<core::WorkUnitId>> table = tmpl->assignment();
      benchmark::DoNotOptimize(table);
      for (std::size_t i = 0; i < units.size(); ++i) {
        core::AssignWork work = tmpl->prototypes()[i];
        benchmark::DoNotOptimize(work);
      }
      benchmark::DoNotOptimize(units);
    } else {
      store.clear();
      auto units =
          core::PartitionGenerator::generate(core::PartitionScheme::kOneToAll, cat);
      auto tmpl = core::ExecutionTemplate::capture(
          std::move(units), command, cat, "/data", true,
          core::AssignmentPolicy::kRoundRobin, kWorkers, 0, {});
      store.insert(key, std::move(tmpl));
      benchmark::DoNotOptimize(store.size());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ControlPlaneTemplate)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
