// EXP-F6B — Figure 6b: Effect of Different Partitioning — BLAST.
//
// For BLAST the shared database must reach every node in all strategies, but
// per-task transfer is negligible: execution dominates, and real-time's win
// comes from load-balancing the skewed search costs rather than hiding
// transfers.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

namespace {
// Coefficient of variation of per-worker busy time: the load-balance metric.
double worker_imbalance(const core::RunReport& r) {
  RunningStats s;
  for (const auto& w : r.workers) s.add(w.busy_seconds);
  return s.cv();
}
}  // namespace

int main() {
  PaperScenarioOptions opt;

  std::printf("Running Figure 6b scenarios (BLAST, full scale)...\n");
  const auto model = std::make_shared<const BlastModel>(make_blast_model(opt));
  exp::ScenarioSweep sweep;
  const auto id_local =
      sweep.grid().add_blast(PlacementStrategy::kPrePartitionLocal, opt, model);
  const auto id_pre = sweep.grid().add_blast(PlacementStrategy::kPrePartitionRemote, opt, model);
  const auto id_rt = sweep.grid().add_blast(PlacementStrategy::kRealTime, opt, model);
  sweep.run();
  const auto& local = sweep.report(id_local);
  const auto& pre = sweep.report(id_pre);
  const auto& rt = sweep.report(id_rt);

  TextTable table("Figure 6b: BLAST — transfer/execution decomposition (seconds)",
                  {"Strategy", "Transfer busy", "Execution busy", "Total",
                   "Worker imbalance (cv)"});
  const auto row = [&](const char* name, const core::RunReport& r) {
    table.add_row({name, bench::secs(r.transfer_busy()), bench::secs(r.compute_busy()),
                   bench::secs(r.makespan()), TextTable::num(worker_imbalance(r), 3)});
  };
  row("pre-partitioning local", local);
  row("pre-partitioning remote", pre);
  row("real-time partitioning", rt);
  table.add_note("paper shape: transfer is a small slice (database staging); totals are "
                 "dominated by execution; real-time lowest via inherent load balancing");
  table.add_note("paper totals: real-time 3794.90 s vs pre-partitioned 4131.07 s");
  std::printf("%s", table.to_string().c_str());

  CsvWriter csv({"strategy", "transfer_busy", "exec_busy", "total", "imbalance_cv"});
  csv.add_row({"pre-local", bench::secs(local.transfer_busy()),
               bench::secs(local.compute_busy()), bench::secs(local.makespan()),
               TextTable::num(worker_imbalance(local), 4)});
  csv.add_row({"pre-remote", bench::secs(pre.transfer_busy()),
               bench::secs(pre.compute_busy()), bench::secs(pre.makespan()),
               TextTable::num(worker_imbalance(pre), 4)});
  csv.add_row({"real-time", bench::secs(rt.transfer_busy()), bench::secs(rt.compute_busy()),
               bench::secs(rt.makespan()), TextTable::num(worker_imbalance(rt), 4)});
  bench::try_save(csv, "fig6b.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
