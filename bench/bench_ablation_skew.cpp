// EXP-A3 — Ablation of design decision D2: task-cost skew sweep.
//
// Real-time partitioning "inherently load-balances" (Section III.A).  This
// bench quantifies that: a synthetic compute-bound workload with increasing
// task-cost coefficient of variation, comparing pre-partitioned round-robin,
// pre-partitioned size-balanced (LPT), and real-time dispatch.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "workload/synthetic.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::AssignmentPolicy;
using core::PlacementStrategy;

namespace {

core::RunReport run_case(double cv, PlacementStrategy strategy, AssignmentPolicy policy) {
  sim::Simulation sim(77);
  cluster::VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  cluster.provision(type, 4);

  SyntheticParams params;
  params.file_count = 1024;
  params.mean_file_bytes = 10 * KB;
  params.mean_task_seconds = 4.0;
  params.task_cv = cv;
  params.seed = 1234;  // same costs for every strategy
  SyntheticModel app(params);
  auto units =
      core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile, app.catalog());

  core::RunOptions opt;
  opt.strategy = strategy;
  opt.assignment = policy;
  core::FriedaRun run(cluster, app.catalog(), std::move(units), app,
                      core::CommandTemplate("app $inp1"), opt);
  return run.run();
}

}  // namespace

int main() {
  TextTable table("Ablation A3: task-cost skew vs. strategy (1024 tasks, 16 cores, seconds)",
                  {"cost cv", "pre round-robin", "pre LPT(bytes)", "real-time",
                   "real-time gain"});
  CsvWriter csv({"cv", "pre_rr", "pre_lpt", "realtime"});

  exp::ScenarioSweep sweep;
  struct Point {
    double cv;
    exp::JobId rr, lpt, rt;
  };
  std::vector<Point> points;
  for (const double cv : {0.0, 0.25, 0.5, 1.0, 1.5, 2.0}) {
    const auto tag = [cv](const char* mode) {
      return "skew-cv" + TextTable::num(cv, 2) + "/" + mode;
    };
    points.push_back(
        {cv,
         sweep.grid().add(tag("pre-rr"),
                          [cv] {
                            return run_case(cv, PlacementStrategy::kPrePartitionRemote,
                                            AssignmentPolicy::kRoundRobin);
                          }),
         sweep.grid().add(tag("pre-lpt"),
                          [cv] {
                            return run_case(cv, PlacementStrategy::kPrePartitionRemote,
                                            AssignmentPolicy::kSizeBalanced);
                          }),
         sweep.grid().add(tag("real-time"), [cv] {
           return run_case(cv, PlacementStrategy::kRealTime, AssignmentPolicy::kRoundRobin);
         })});
  }
  sweep.run();

  for (const auto& p : points) {
    const auto& rr = sweep.report(p.rr);
    const auto& lpt = sweep.report(p.lpt);
    const auto& rt = sweep.report(p.rt);
    table.add_row({TextTable::num(p.cv, 2), bench::secs(rr.makespan()),
                   bench::secs(lpt.makespan()), bench::secs(rt.makespan()),
                   TextTable::num((1.0 - rt.makespan() / rr.makespan()) * 100, 1) + "%"});
    csv.add_row_nums({p.cv, rr.makespan(), lpt.makespan(), rt.makespan()});
  }
  table.add_note("D2: the real-time advantage grows with skew — static pre-partitioning "
                 "pays the straggler's tail, pull-based dispatch does not");
  table.add_note("LPT balances *bytes*, not costs, so it cannot fix compute skew either");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_skew.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
