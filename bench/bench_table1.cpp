// EXP-T1 — Table I: Effect of Data Parallelization.
//
// Paper values (seconds):
//   ALS   — sequential 1258.80, pre-partitioned 789.39, real-time 696.70
//   BLAST — sequential 61200,   pre-partitioned 4131.07, real-time 3794.90
//
// Reproduces all six cells on the simulated ExoGENI-like cluster
// (4 x c1.xlarge + data source, 100 Mbps NICs).  Absolute seconds come from
// the calibrated workload models; the claim under test is the *shape*:
// parallelization gains ~2x for ALS and ~15x for BLAST, and real-time beats
// pre-partitioning in both.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/calibration.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

int main() {
  PaperScenarioOptions opt;  // full paper scale

  std::printf("Running Table I scenarios (full scale: 625 ALS comparisons, "
              "7500 BLAST sequences)...\n");

  // Six independent runs; each dataset is built once and shared (immutable)
  // across the jobs that use it.
  const auto als_model = std::make_shared<const ImageCompareModel>(make_als_model(opt));
  const auto blast_model = std::make_shared<const BlastModel>(make_blast_model(opt));
  exp::ScenarioSweep sweep;
  const auto id_als_seq = sweep.grid().add_als_sequential(opt, als_model);
  const auto id_als_pre =
      sweep.grid().add_als(PlacementStrategy::kPrePartitionRemote, opt, als_model);
  const auto id_als_rt = sweep.grid().add_als(PlacementStrategy::kRealTime, opt, als_model);
  const auto id_blast_seq = sweep.grid().add_blast_sequential(opt, blast_model);
  const auto id_blast_pre =
      sweep.grid().add_blast(PlacementStrategy::kPrePartitionRemote, opt, blast_model);
  const auto id_blast_rt =
      sweep.grid().add_blast(PlacementStrategy::kRealTime, opt, blast_model);
  sweep.run();
  const auto& als_seq = sweep.report(id_als_seq);
  const auto& als_pre = sweep.report(id_als_pre);
  const auto& als_rt = sweep.report(id_als_rt);
  const auto& blast_seq = sweep.report(id_blast_seq);
  const auto& blast_pre = sweep.report(id_blast_pre);
  const auto& blast_rt = sweep.report(id_blast_rt);

  TextTable table("Table I: Effect of Data Parallelization (seconds)",
                  {"Application", "Mode", "Paper (s)", "Measured (s)", "Measured/Paper"});
  const auto row = [&](const char* app, const char* mode, double paper,
                       const core::RunReport& r) {
    table.add_row({app, mode, bench::secs(paper), bench::secs(r.makespan()),
                   bench::ratio(r.makespan(), paper)});
  };
  row("ALS", "sequential", calib::paper::kAlsSequential, als_seq);
  row("ALS", "pre-partitioned", calib::paper::kAlsPrePartitioned, als_pre);
  row("ALS", "real-time", calib::paper::kAlsRealTime, als_rt);
  row("BLAST", "sequential", calib::paper::kBlastSequential, blast_seq);
  row("BLAST", "pre-partitioned", calib::paper::kBlastPrePartitioned, blast_pre);
  row("BLAST", "real-time", calib::paper::kBlastRealTime, blast_rt);

  table.add_note("ALS parallel speedup (real-time): " +
                 TextTable::num(als_seq.makespan() / als_rt.makespan(), 2) +
                 "x (paper ~1.8x)");
  table.add_note("BLAST parallel speedup (real-time): " +
                 TextTable::num(blast_seq.makespan() / blast_rt.makespan(), 2) +
                 "x (paper ~16.1x)");
  table.add_note("real-time < pre-partitioned in both applications, as in the paper");
  std::printf("%s", table.to_string().c_str());

  CsvWriter csv({"app", "mode", "paper_seconds", "measured_seconds"});
  csv.add_row({"als", "sequential", bench::secs(calib::paper::kAlsSequential),
               bench::secs(als_seq.makespan())});
  csv.add_row({"als", "pre-partitioned", bench::secs(calib::paper::kAlsPrePartitioned),
               bench::secs(als_pre.makespan())});
  csv.add_row({"als", "real-time", bench::secs(calib::paper::kAlsRealTime),
               bench::secs(als_rt.makespan())});
  csv.add_row({"blast", "sequential", bench::secs(calib::paper::kBlastSequential),
               bench::secs(blast_seq.makespan())});
  csv.add_row({"blast", "pre-partitioned", bench::secs(calib::paper::kBlastPrePartitioned),
               bench::secs(blast_pre.makespan())});
  csv.add_row({"blast", "real-time", bench::secs(calib::paper::kBlastRealTime),
               bench::secs(blast_rt.makespan())});
  bench::try_save(csv, "table1.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
