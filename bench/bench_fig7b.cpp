// EXP-F7B — Figure 7b: Effect of Data Movement — BLAST.
//
// "BLAST is almost insensitive to the placement of computation or data":
// tiny query files make the movement question irrelevant; only the common
// database staging appears, and it is amortized over hours of compute.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

int main() {
  PaperScenarioOptions opt;

  std::printf("Running Figure 7b scenarios (BLAST, full scale)...\n");
  const auto model = std::make_shared<const BlastModel>(make_blast_model(opt));
  exp::ScenarioSweep sweep;
  const auto id_compute =
      sweep.grid().add_blast(PlacementStrategy::kPrePartitionLocal, opt, model);
  const auto id_data =
      sweep.grid().add_blast(PlacementStrategy::kPrePartitionRemote, opt, model);
  const auto id_stream = sweep.grid().add_blast(PlacementStrategy::kRemoteRead, opt, model);
  sweep.run();
  const auto& move_compute = sweep.report(id_compute);
  const auto& move_data = sweep.report(id_data);
  const auto& stream = sweep.report(id_stream);

  TextTable table("Figure 7b: BLAST — move data vs. move computation (seconds)",
                  {"Approach", "Transfer busy", "Total", "vs. move-computation"});
  const auto row = [&](const char* name, const core::RunReport& r) {
    table.add_row({name, bench::secs(r.transfer_busy()), bench::secs(r.makespan()),
                   bench::ratio(r.makespan(), move_compute.makespan())});
  };
  row("move computation to data", move_compute);
  row("move data to computation", move_data);
  row("remote read (stream data)", stream);
  const double gap = std::abs(move_data.makespan() - move_compute.makespan()) /
                     move_compute.makespan() * 100.0;
  table.add_note("paper shape: BLAST is almost insensitive to placement — measured gap " +
                 TextTable::num(gap, 1) + "% between the two approaches");
  std::printf("%s", table.to_string().c_str());

  CsvWriter csv({"approach", "transfer_busy", "total"});
  csv.add_row({"move-computation", bench::secs(move_compute.transfer_busy()),
               bench::secs(move_compute.makespan())});
  csv.add_row({"move-data", bench::secs(move_data.transfer_busy()),
               bench::secs(move_data.makespan())});
  csv.add_row({"remote-read", bench::secs(stream.transfer_busy()),
               bench::secs(stream.makespan())});
  bench::try_save(csv, "fig7b.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
