// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints an ASCII table with the paper's reported value next to
// the value measured on our simulated substrate, plus the ratio, and writes
// a CSV alongside (into the working directory) for plotting.
#pragma once

#include <cstdio>
#include <string>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "frieda/report.hpp"

namespace frieda::bench {

/// Format seconds with two decimals.
inline std::string secs(double s) { return TextTable::num(s, 2); }

/// Ratio column: measured / paper.
inline std::string ratio(double measured, double paper) {
  return paper > 0 ? TextTable::num(measured / paper, 2) + "x" : "-";
}

/// Write a CSV next to the binary's working directory, ignoring failures
/// (benches may run from read-only checkouts).
inline void try_save(const CsvWriter& csv, const std::string& path) {
  try {
    csv.save(path);
    std::printf("  (series written to %s)\n", path.c_str());
  } catch (...) {
    std::printf("  (could not write %s; skipping CSV)\n", path.c_str());
  }
}

}  // namespace frieda::bench
