// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench prints an ASCII table with the paper's reported value next to
// the value measured on our simulated substrate, plus the ratio, and writes
// a CSV alongside (into the working directory) for plotting.
#pragma once

#include <cstdio>
#include <exception>
#include <string>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "exp/grid.hpp"
#include "frieda/report.hpp"

namespace frieda::bench {

/// Format seconds with two decimals.
inline std::string secs(double s) { return TextTable::num(s, 2); }

/// Ratio column: measured / paper.
inline std::string ratio(double measured, double paper) {
  return paper > 0 ? TextTable::num(measured / paper, 2) + "x" : "-";
}

/// Write a CSV next to the binary's working directory, tolerating failures
/// (benches may run from read-only checkouts) but reporting why.
inline void try_save(const CsvWriter& csv, const std::string& path) {
  try {
    csv.save(path);
    std::printf("  (series written to %s)\n", path.c_str());
  } catch (const std::exception& e) {
    std::printf("  (could not write %s; skipping CSV: %s)\n", path.c_str(), e.what());
  }
}

/// Print the sweep's total wall clock so parallel speedups are visible in
/// bench output, plus the scheduler's memoization counters (runs executed
/// vs. requested — hits are cells served from the in-process result cache,
/// see docs/performance.md "Memoization and cost-aware scheduling").
/// Printed outside the tables: every table and CSV stays byte-identical to
/// sequential, uncached execution.
inline void print_sweep_stats(std::size_t jobs, std::size_t threads, double wall_seconds,
                              std::size_t runs_executed, std::size_t cache_hits) {
  std::printf("  (sweep: %zu jobs on %zu threads, %.2f s wall; %zu executed, "
              "%zu cache hit%s; set FRIEDA_SWEEP_THREADS=1 for the sequential "
              "baseline)\n",
              jobs, threads, wall_seconds, runs_executed, cache_hits,
              cache_hits == 1 ? "" : "s");
}

/// Overload for the common ScenarioSweep case.
inline void print_sweep_stats(const exp::ScenarioSweep& sweep) {
  print_sweep_stats(sweep.jobs(), sweep.threads_used(), sweep.wall_seconds(),
                    sweep.runs_executed(), sweep.cache_hits());
}

/// Overload for drivers that use a bare SweepRunner with a custom result.
template <typename R>
inline void print_sweep_stats(const exp::SweepRunner<R>& runner) {
  print_sweep_stats(runner.runs_requested(), runner.threads_used(), runner.wall_seconds(),
                    runner.runs_executed(), runner.cache_hits());
}

}  // namespace frieda::bench
