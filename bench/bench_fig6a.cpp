// EXP-F6A — Figure 6a: Effect of Different Partitioning — ALS.
//
// The paper's stacked bars decompose each strategy's wall time into data
// transfer and execution for the light-source image analysis:
//   * pre-partitioned local  — execution only (data on the VMs already);
//   * pre-partitioned remote — transfer then execution, strictly sequential,
//     the worst total;
//   * real-time              — transfer overlapped with execution, total
//     close to the transfer bound.
// `--analyze` additionally re-runs the real-time scenario with a tracer
// attached and prints the obs::TraceAnalyzer attribution / critical-path
// report — the measured version of the stacked-bar decomposition above.
// The sweep itself (table, fig6a.csv) is untouched by the flag.
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "obs/analysis.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

int main(int argc, char** argv) {
  bool analyze = false;
  for (int i = 1; i < argc; ++i) analyze |= std::strcmp(argv[i], "--analyze") == 0;

  PaperScenarioOptions opt;

  std::printf("Running Figure 6a scenarios (ALS, full scale)...\n");
  const auto model = std::make_shared<const ImageCompareModel>(make_als_model(opt));
  exp::ScenarioSweep sweep;
  const auto id_local = sweep.grid().add_als(PlacementStrategy::kPrePartitionLocal, opt, model);
  const auto id_pre = sweep.grid().add_als(PlacementStrategy::kPrePartitionRemote, opt, model);
  const auto id_rt = sweep.grid().add_als(PlacementStrategy::kRealTime, opt, model);
  const auto id_volume = sweep.grid().add_als(PlacementStrategy::kSharedVolume, opt, model);
  sweep.run();
  const auto& local = sweep.report(id_local);
  const auto& pre = sweep.report(id_pre);
  const auto& rt = sweep.report(id_rt);
  const auto& volume = sweep.report(id_volume);

  TextTable table("Figure 6a: ALS — transfer/execution decomposition (seconds)",
                  {"Strategy", "Transfer busy", "Execution busy", "Overlap", "Total"});
  const auto row = [&](const char* name, const core::RunReport& r) {
    table.add_row({name, bench::secs(r.transfer_busy()), bench::secs(r.compute_busy()),
                   bench::secs(r.overlap()), bench::secs(r.makespan())});
  };
  row("pre-partitioning local", local);
  row("pre-partitioning remote", pre);
  row("real-time partitioning", rt);
  row("shared volume (networked disk)", volume);
  table.add_note("paper shape: local fastest; remote worst (sequential phases); "
                 "real-time recovers most of the transfer time via overlap");
  table.add_note("the networked-disk variant streams every read through the volume "
                 "server's NIC (Section III.A's local vs. networked disk comparison)");
  table.add_note("paper totals: real-time 696.70 s vs pre-partitioned 789.39 s");
  std::printf("%s", table.to_string().c_str());

  CsvWriter csv({"strategy", "transfer_busy", "exec_busy", "overlap", "total"});
  csv.add_row({"pre-local", bench::secs(local.transfer_busy()),
               bench::secs(local.compute_busy()), bench::secs(local.overlap()),
               bench::secs(local.makespan())});
  csv.add_row({"pre-remote", bench::secs(pre.transfer_busy()),
               bench::secs(pre.compute_busy()), bench::secs(pre.overlap()),
               bench::secs(pre.makespan())});
  csv.add_row({"real-time", bench::secs(rt.transfer_busy()), bench::secs(rt.compute_busy()),
               bench::secs(rt.overlap()), bench::secs(rt.makespan())});
  csv.add_row({"shared-volume", bench::secs(volume.transfer_busy()),
               bench::secs(volume.compute_busy()), bench::secs(volume.overlap()),
               bench::secs(volume.makespan())});
  bench::try_save(csv, "fig6a.csv");
  bench::print_sweep_stats(sweep);

  if (analyze) {
    // Traced re-run of the real-time strategy (a tracer attachment is a side
    // effect, so this run bypasses the memoizing sweep by design; same
    // deterministic result, plus the event stream the analyzer needs).
    std::printf("\nTracing real-time partitioning for analysis...\n");
    obs::Tracer tracer;
    auto topt = opt;
    topt.tracer = &tracer;
    (void)run_als(PlacementStrategy::kRealTime, *model, topt);
    const auto analysis = obs::TraceAnalyzer::analyze(tracer);
    std::printf("%s", obs::render_report(analysis).c_str());
  }
  return 0;
}
