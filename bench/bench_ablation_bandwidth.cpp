// EXP-A1 — Ablation of design decisions D2/D3: bandwidth sweep.
//
// Sweeps the provisioned NIC bandwidth from 10 Mbps to 1 Gbps and reports
// each strategy's makespan for ALS and BLAST (at 20% scale so the sweep
// stays quick).  Expected shapes:
//   * ALS is transfer-bound at low bandwidth: real-time ~= transfer bound,
//     pre-partition = transfer + compute; the gap closes as bandwidth grows
//     and all strategies converge to the compute bound.
//   * BLAST barely moves across the sweep (database staging only).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

int main() {
  const double mbps_points[] = {10, 50, 100, 250, 500, 1000};

  TextTable table("Ablation A1: NIC bandwidth sweep (20% scale, seconds)",
                  {"Bandwidth", "ALS pre-remote", "ALS real-time", "BLAST pre-remote",
                   "BLAST real-time"});
  CsvWriter csv({"mbps", "als_pre", "als_rt", "blast_pre", "blast_rt"});

  // All 24 runs share one scale, so both datasets are built once; the jobs
  // only differ in NIC bandwidth and strategy.
  PaperScenarioOptions base;
  base.scale = 0.2;
  const auto als_model = std::make_shared<const ImageCompareModel>(make_als_model(base));
  const auto blast_model = std::make_shared<const BlastModel>(make_blast_model(base));
  exp::ScenarioSweep sweep;
  struct Point {
    double mb;
    exp::JobId als_pre, als_rt, blast_pre, blast_rt;
  };
  std::vector<Point> points;
  for (const double mb : mbps_points) {
    PaperScenarioOptions opt = base;
    opt.nic = mbps(mb);
    auto& g = sweep.grid();
    points.push_back(
        {mb, g.add_als(PlacementStrategy::kPrePartitionRemote, opt, als_model),
         g.add_als(PlacementStrategy::kRealTime, opt, als_model),
         g.add_blast(PlacementStrategy::kPrePartitionRemote, opt, blast_model),
         g.add_blast(PlacementStrategy::kRealTime, opt, blast_model)});
  }
  sweep.run();

  for (const auto& p : points) {
    const auto& als_pre = sweep.report(p.als_pre);
    const auto& als_rt = sweep.report(p.als_rt);
    const auto& blast_pre = sweep.report(p.blast_pre);
    const auto& blast_rt = sweep.report(p.blast_rt);
    table.add_row({TextTable::num(p.mb, 0) + " Mbps", bench::secs(als_pre.makespan()),
                   bench::secs(als_rt.makespan()), bench::secs(blast_pre.makespan()),
                   bench::secs(blast_rt.makespan())});
    csv.add_row_nums({p.mb, als_pre.makespan(), als_rt.makespan(), blast_pre.makespan(),
                      blast_rt.makespan()});
  }
  table.add_note("D3: the master NIC is the staging bottleneck — ALS times scale ~1/bw "
                 "until the compute bound takes over");
  table.add_note("D2: the real-time advantage on ALS shrinks as bandwidth grows");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_bandwidth.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
