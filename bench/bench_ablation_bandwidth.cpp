// EXP-A1 — Ablation of design decisions D2/D3: bandwidth sweep.
//
// Sweeps the provisioned NIC bandwidth from 10 Mbps to 1 Gbps and reports
// each strategy's makespan for ALS and BLAST (at 20% scale so the sweep
// stays quick).  Expected shapes:
//   * ALS is transfer-bound at low bandwidth: real-time ~= transfer bound,
//     pre-partition = transfer + compute; the gap closes as bandwidth grows
//     and all strategies converge to the compute bound.
//   * BLAST barely moves across the sweep (database staging only).
#include <cstdio>

#include "bench_util.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

int main() {
  const double mbps_points[] = {10, 50, 100, 250, 500, 1000};

  TextTable table("Ablation A1: NIC bandwidth sweep (20% scale, seconds)",
                  {"Bandwidth", "ALS pre-remote", "ALS real-time", "BLAST pre-remote",
                   "BLAST real-time"});
  CsvWriter csv({"mbps", "als_pre", "als_rt", "blast_pre", "blast_rt"});

  for (const double mb : mbps_points) {
    PaperScenarioOptions opt;
    opt.scale = 0.2;
    opt.nic = mbps(mb);
    const auto als_pre = run_als(PlacementStrategy::kPrePartitionRemote, opt);
    const auto als_rt = run_als(PlacementStrategy::kRealTime, opt);
    const auto blast_pre = run_blast(PlacementStrategy::kPrePartitionRemote, opt);
    const auto blast_rt = run_blast(PlacementStrategy::kRealTime, opt);
    table.add_row({TextTable::num(mb, 0) + " Mbps", bench::secs(als_pre.makespan()),
                   bench::secs(als_rt.makespan()), bench::secs(blast_pre.makespan()),
                   bench::secs(blast_rt.makespan())});
    csv.add_row_nums({mb, als_pre.makespan(), als_rt.makespan(), blast_pre.makespan(),
                      blast_rt.makespan()});
  }
  table.add_note("D3: the master NIC is the staging bottleneck — ALS times scale ~1/bw "
                 "until the compute bound takes over");
  table.add_note("D2: the real-time advantage on ALS shrinks as bandwidth grows");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_bandwidth.csv");
  return 0;
}
