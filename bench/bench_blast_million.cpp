// BENCH — headline scale driver: one million BLAST work units on a 10k-VM
// hierarchical cluster.
//
// The paper's evaluation tops out at 61 VMs and 7,500 sequences; the
// ROADMAP's north star is cloud scale.  This driver provisions 10,000
// single-core VMs grouped into racks of 40 behind shared uplinks, builds a
// million-sequence BLAST catalog, pre-places the partitions (the
// data-in-the-VM-image configuration of Figure 6a), and runs the full
// controller/master/worker protocol end to end — a million dispatched,
// executed and accounted work units in one simulation.
//
// Pre-partitioned local is the right placement here: execution is
// data-local, so the run measures engine scale (event queue, protocol
// channels, per-class completion scheduling) rather than a single saturated
// source NIC.  The incremental network solver keeps what network activity
// remains (NIC registration, failure bookkeeping) out of the hot path; the
// transfer-heavy scale story is told by BM_NetworkManyFlows/16384 and
// BM_NetworkChurn in bench_micro_engine.
//
// Prints units, makespan, simulator events, wall clock and the network
// solver counters, and exits non-zero when the wall clock exceeds the
// recorded budget (BENCH_engine.json) so CI can catch regressions.
//
//   bench_blast_million                      # full headline run
//   bench_blast_million --units 20000 --vms 500   # scaled-down smoke
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "workload/blast.hpp"

using namespace frieda;

int main(int argc, char** argv) {
  std::size_t units = 1'000'000;
  std::size_t vm_count = 10'000;
  std::size_t rack_size = 40;
  double budget_seconds = 0.0;  // 0 = report only, no enforcement
  for (int i = 1; i + 1 < argc; i += 2) {
    if (!std::strcmp(argv[i], "--units")) {
      units = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--vms")) {
      vm_count = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--rack-size")) {
      rack_size = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--budget")) {
      budget_seconds = std::strtod(argv[i + 1], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--units N] [--vms N] [--rack-size N] [--budget SECONDS]\n",
                   argv[0]);
      return 2;
    }
  }
  if (rack_size == 0) rack_size = 1;

  std::printf("BLAST at scale: %zu units on %zu VMs (racks of %zu)...\n", units, vm_count,
              rack_size);

  const auto wall_start = std::chrono::steady_clock::now();

  sim::Simulation sim(/*seed=*/2);
  cluster::ClusterOptions copts;
  copts.source_nic_up = gbps(10);  // data source sized for a 10k-VM fleet
  copts.source_nic_down = gbps(10);
  cluster::VirtualCluster cluster(sim, copts);

  auto type = cluster::c1_xlarge();
  type.cores = 1;  // one worker per VM: 10k workers, ~100 units each
  type.nic_up = gbps(1);
  type.nic_down = gbps(1);
  type.boot_time = 0.0;
  const auto vms = cluster.provision(type, vm_count);

  // Rack hierarchy: racks of `rack_size` VMs behind a shared 40 Gbps uplink.
  // The data source hangs off the core switch directly (no uplink).
  auto& topo = cluster.network().topology();
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const auto rack = static_cast<net::RackId>(i / rack_size);
    topo.set_rack(cluster.vm(vms[i]).node(), rack);
  }
  for (net::RackId r = 0; r * rack_size < vms.size(); ++r) {
    topo.set_rack_uplink(r, gbps(40));
  }

  auto params = workload::BlastParams::paper();
  params.sequence_count = units;
  const workload::BlastModel app(params);

  auto work = core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile,
                                                 app.catalog());
  obs::MetricsRegistry metrics;
  core::RunOptions ropt;
  ropt.strategy = core::PlacementStrategy::kPrePartitionLocal;
  ropt.scheme = core::PartitionScheme::kSingleFile;
  ropt.multicore = true;
  ropt.metrics = &metrics;
  core::FriedaRun run(cluster, app.catalog(), std::move(work),  app,
                      core::CommandTemplate("blastall -p blastp -d /data/db $inp1"), ropt);
  run.pre_place_partitions(vms);
  const auto report = run.run();

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto* c = metrics.find_counter(name);
    return c ? c->value() : 0;
  };
  std::printf("  units completed     : %zu / %zu\n", report.units_completed, units);
  std::printf("  makespan (sim)      : %.2f s\n", report.makespan());
  std::printf("  simulator events    : %llu (%.0f events/s wall)\n",
              static_cast<unsigned long long>(sim.events_processed()),
              static_cast<double>(sim.events_processed()) / wall);
  std::printf("  network solver      : %llu solves, %llu full, %llu dirty classes\n",
              static_cast<unsigned long long>(counter("net.solver_invocations")),
              static_cast<unsigned long long>(counter("net.solver_full_solves")),
              static_cast<unsigned long long>(counter("net.solver_dirty_classes")));
  std::printf("  wall clock          : %.2f s\n", wall);

  if (report.units_completed != units) {
    std::printf("  FAIL: %zu units unaccounted\n", units - report.units_completed);
    return 1;
  }
  if (budget_seconds > 0.0 && wall > budget_seconds) {
    std::printf("  FAIL: wall clock %.2f s exceeds budget %.2f s\n", wall, budget_seconds);
    return 1;
  }
  std::printf("  OK%s\n",
              budget_seconds > 0.0 ? " (within wall-clock budget)" : "");
  return 0;
}
