// EXP-A8 — Ablation: federated sites and topology-aware dispatch.
//
// Two sites, each with 2 c1.xlarge VMs; the data source sits at site A and a
// prior campaign left half of the inputs resident on site B's VMs.  The WAN
// between the sites is swept from 10 to 200 Mbps.  Locality-aware real-time
// dispatch (RunOptions::locality_aware) routes resident units to site-B
// workers instead of re-pulling bytes across the WAN — the "network topology
// aware" data management the paper calls for in federated clouds (Section I).
// `--analyze` additionally re-runs the representative 25 Mbps topology-aware
// case with a tracer attached and prints the obs::TraceAnalyzer report,
// showing where the WAN-bound makespan actually goes (transfer vs. exec vs.
// wait).  The sweep itself (table, ablation_locality.csv) is untouched.
#include <cstdio>
#include <cstring>
#include <iterator>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "obs/analysis.hpp"
#include "workload/synthetic.hpp"

using namespace frieda;
using core::PlacementStrategy;
using workload::SyntheticModel;
using workload::SyntheticParams;

namespace {

struct Outcome {
  double makespan = 0.0;
  Bytes wan_bytes = 0;
};

Outcome run_case(double wan_mbps, bool locality_aware, obs::Tracer* tracer = nullptr) {
  sim::Simulation sim(404);
  cluster::VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.cores = 2;
  const auto site_a = cluster.provision(type, 2, 0);
  const auto site_b = cluster.provision(type, 2, 1);
  (void)site_a;
  cluster.connect_sites(0, 1, mbps(wan_mbps));

  SyntheticParams params;
  params.file_count = 64;
  params.mean_file_bytes = 8 * MB;
  params.mean_task_seconds = 1.5;
  SyntheticModel app(params);
  auto units =
      core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile, app.catalog());

  core::RunOptions opt;
  opt.strategy = PlacementStrategy::kRealTime;
  opt.locality_aware = locality_aware;
  opt.tracer = tracer;
  core::FriedaRun run(cluster, app.catalog(), std::move(units), app,
                      core::CommandTemplate("app $inp1"), opt);
  std::vector<storage::FileId> half_b0, half_b1;
  for (storage::FileId f = 32; f < 48; ++f) half_b0.push_back(f);
  for (storage::FileId f = 48; f < 64; ++f) half_b1.push_back(f);
  run.pre_place_files(site_b[0], half_b0);
  run.pre_place_files(site_b[1], half_b1);

  Outcome out;
  auto& topo = cluster.network().topology();
  cluster.network().set_observer(
      [&out, &topo](net::NodeId src, net::NodeId dst, const net::TransferResult& r) {
        if (topo.site(src) != topo.site(dst)) out.wan_bytes += r.transferred;
      });
  const auto report = run.run();
  out.makespan = report.makespan();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool analyze = false;
  for (int i = 1; i < argc; ++i) analyze |= std::strcmp(argv[i], "--analyze") == 0;

  TextTable table("Ablation A8: federated sites — topology-aware vs. blind dispatch",
                  {"WAN", "blind makespan (s)", "aware makespan (s)", "blind WAN MB",
                   "aware WAN MB"});
  CsvWriter csv({"wan_mbps", "blind_s", "aware_s", "blind_wan_mb", "aware_wan_mb"});
  const double wan_points[] = {10.0, 25.0, 50.0, 100.0, 200.0};
  std::vector<exp::Job<Outcome>> jobs;
  for (const double wan : wan_points) {
    const auto tag = "wan" + TextTable::num(wan, 0);
    jobs.push_back({tag + "/blind", [wan] { return run_case(wan, false); }});
    jobs.push_back({tag + "/aware", [wan] { return run_case(wan, true); }});
  }
  exp::SweepRunner<Outcome> runner;
  const auto outcomes = runner.run(std::move(jobs));

  for (std::size_t i = 0; i < std::size(wan_points); ++i) {
    const double wan = wan_points[i];
    const auto& blind = outcomes[2 * i].get();
    const auto& aware = outcomes[2 * i + 1].get();
    table.add_row({TextTable::num(wan, 0) + " Mbps", bench::secs(blind.makespan),
                   bench::secs(aware.makespan),
                   TextTable::num(static_cast<double>(blind.wan_bytes) / 1e6, 0),
                   TextTable::num(static_cast<double>(aware.wan_bytes) / 1e6, 0)});
    csv.add_row_nums({wan, blind.makespan, aware.makespan,
                      static_cast<double>(blind.wan_bytes) / 1e6,
                      static_cast<double>(aware.wan_bytes) / 1e6});
  }
  table.add_note("half the inputs pre-reside at site B; topology-aware dispatch keeps them "
                 "there, cutting WAN traffic and the makespan penalty of a slow WAN");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_locality.csv");
  bench::print_sweep_stats(runner);

  if (analyze) {
    std::printf("\nTracing the 25 Mbps topology-aware case for analysis...\n");
    obs::Tracer tracer;
    (void)run_case(25.0, true, &tracer);
    const auto analysis = obs::TraceAnalyzer::analyze(tracer);
    std::printf("%s", obs::render_report(analysis).c_str());
  }
  return 0;
}
