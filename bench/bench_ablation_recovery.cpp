// EXP-A7 — Ablation: master outage duration vs. run impact.
//
// Implements the measurement behind the paper's future-work claim that the
// master is recoverable through the controller-master channel (Section V.A):
// crash the master mid-run, restart it after a sweep of outage durations,
// and report the makespan overhead.  Because the planes are decoupled,
// workers keep executing assignments they already hold, so short outages
// cost far less than their nominal duration.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

namespace {

core::RunReport run_with_outage(double crash_at, double outage) {
  PaperScenarioOptions opt;
  opt.scale = 0.2;
  if (outage >= 0.0 && crash_at > 0.0) {
    opt.arrange = [crash_at, outage](sim::Simulation& sim, cluster::VirtualCluster&,
                                     core::FriedaRun& run) {
      sim.schedule_at(crash_at, [&run, outage] { run.crash_master(outage); });
    };
  }
  return run_als(PlacementStrategy::kRealTime, opt);
}

}  // namespace

int main() {
  exp::ScenarioSweep sweep;
  const auto id_baseline =
      sweep.grid().add("no-crash", [] { return run_with_outage(0.0, -1.0); });
  struct Case {
    double outage;
    exp::JobId id;
  };
  std::vector<Case> cases;
  for (const double outage : {0.0, 5.0, 15.0, 30.0, 60.0}) {
    cases.push_back({outage, sweep.grid().add("outage" + bench::secs(outage), [outage] {
                       return run_with_outage(40.0, outage);
                     })});
  }
  sweep.run();
  const auto& baseline = sweep.report(id_baseline);

  TextTable table("Ablation A7: master outage at t=40 s (ALS 20%, real-time)",
                  {"outage (s)", "makespan (s)", "overhead vs. no crash", "completed"});
  CsvWriter csv({"outage", "makespan", "overhead_seconds"});
  table.add_row({"none", bench::secs(baseline.makespan()), "-",
                 std::to_string(baseline.units_completed) + "/" +
                     std::to_string(baseline.units_total)});
  for (const auto& c : cases) {
    const auto& r = sweep.report(c.id);
    table.add_row({bench::secs(c.outage), bench::secs(r.makespan()),
                   "+" + bench::secs(r.makespan() - baseline.makespan()),
                   std::to_string(r.units_completed) + "/" + std::to_string(r.units_total)});
    csv.add_row_nums({c.outage, r.makespan(), r.makespan() - baseline.makespan()});
  }
  table.add_note("every run completes all units; the execution plane rides out the outage "
                 "with the assignments it already holds, so overhead < outage duration");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_recovery.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
