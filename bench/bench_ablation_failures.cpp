// EXP-A4 — Ablation of design decision D5: failure handling.
//
// Sweeps the number of injected VM failures for BLAST (20% scale) and
// compares the paper's base behavior (isolate the failed workers, lose
// their in-flight/unassigned units) against the future-work requeue
// extension (re-dispatch lost units to survivors).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

namespace {

core::RunReport run_case(std::size_t failures, bool requeue) {
  PaperScenarioOptions opt;
  opt.scale = 0.2;
  opt.requeue_on_failure = requeue;
  // The injector must outlive the simulation run inside run_blast(); keeping
  // it in a per-case local (not a static) keeps concurrent sweep jobs
  // thread-confined.
  std::unique_ptr<cluster::FailureInjector> injector;
  opt.arrange = [failures, &injector](sim::Simulation&, cluster::VirtualCluster& cluster,
                                      core::FriedaRun&) {
    injector = std::make_unique<cluster::FailureInjector>(cluster);
    for (std::size_t i = 0; i < failures; ++i) {
      injector->schedule(static_cast<cluster::VmId>(i),
                         120.0 + 60.0 * static_cast<double>(i));
    }
  };
  return run_blast(PlacementStrategy::kRealTime, opt);
}

}  // namespace

int main() {
  TextTable table("Ablation A4: VM failures — isolation vs. requeue (BLAST 20%, 4 VMs)",
                  {"failures", "mode", "completed", "failed", "unprocessed", "makespan (s)"});
  CsvWriter csv({"failures", "requeue", "completed", "failed", "unprocessed", "makespan"});

  exp::ScenarioSweep sweep;
  struct Case {
    std::size_t failures;
    bool requeue;
    exp::JobId id;
  };
  std::vector<Case> cases;
  for (const std::size_t failures : {0u, 1u, 2u, 3u}) {
    for (const bool requeue : {false, true}) {
      const auto tag = "failures" + std::to_string(failures) +
                       (requeue ? "/requeue" : "/isolate");
      cases.push_back({failures, requeue,
                       sweep.grid().add(tag, [failures, requeue] {
                         return run_case(failures, requeue);
                       })});
    }
  }
  sweep.run();

  for (const auto& c : cases) {
    const auto& r = sweep.report(c.id);
    table.add_row({std::to_string(c.failures),
                   c.requeue ? "requeue (ext.)" : "isolate (paper)",
                   std::to_string(r.units_completed), std::to_string(r.units_failed),
                   std::to_string(r.units_unprocessed), bench::secs(r.makespan())});
    csv.add_row_nums({static_cast<double>(c.failures), c.requeue ? 1.0 : 0.0,
                      static_cast<double>(r.units_completed),
                      static_cast<double>(r.units_failed),
                      static_cast<double>(r.units_unprocessed), r.makespan()});
  }
  table.add_note("D5 (paper Section V.A Robust): isolation protects the run but loses the "
                 "failed workers' units; the requeue extension completes everything at the "
                 "cost of re-staging and longer makespan");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_failures.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
