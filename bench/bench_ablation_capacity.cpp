// EXP-A5 — Ablation: local-disk capacity vs. strategy viability.
//
// Section III.A: "Every virtual machine has a local disk that provides the
// fastest I/O.  However local disk space is very limited."  This bench
// sweeps the VM-local disk size against a 400 MB transfer-heavy dataset and
// reports, per strategy, how many units could actually run:
//   * no-partition-common needs the full dataset on every node;
//   * pre-partition-remote needs each node's share to fit;
//   * real-time with input eviction only ever needs a handful of units
//     resident, so it degrades last.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "frieda/partition.hpp"
#include "frieda/run.hpp"
#include "workload/synthetic.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

namespace {

core::RunReport run_case(Bytes disk, PlacementStrategy strategy, bool evict) {
  sim::Simulation sim(31);
  cluster::VirtualCluster cluster(sim);
  auto type = cluster::c1_xlarge();
  type.boot_time = 0.0;
  type.disk_capacity = disk;
  cluster.provision(type, 2);

  SyntheticParams params;
  params.file_count = 40;
  params.mean_file_bytes = 10 * MB;  // 400 MB dataset
  params.mean_task_seconds = 2.0;
  SyntheticModel app(params);
  auto units =
      core::PartitionGenerator::generate(core::PartitionScheme::kSingleFile, app.catalog());

  core::RunOptions opt;
  opt.strategy = strategy;
  opt.evict_processed_inputs = evict;
  core::FriedaRun run(cluster, app.catalog(), std::move(units), app,
                      core::CommandTemplate("app $inp1"), opt);
  return run.run();
}

std::string cell(const core::RunReport& r) {
  return std::to_string(r.units_completed) + "/" + std::to_string(r.units_total);
}

}  // namespace

int main() {
  TextTable table("Ablation A5: local-disk capacity vs. completed units "
                  "(400 MB dataset, 2 VMs)",
                  {"disk per VM", "no-partition-common", "pre-partition-remote",
                   "real-time (no evict)", "real-time (evict)"});
  CsvWriter csv({"disk_mb", "common", "pre", "rt_noevict", "rt_evict"});

  exp::ScenarioSweep sweep;
  struct Point {
    Bytes disk;
    exp::JobId common, pre, rt_no, rt_ev;
  };
  std::vector<Point> points;
  for (const Bytes disk : {40 * MB, 100 * MB, 220 * MB, 450 * MB, GiB}) {
    const auto tag = [disk](const char* mode) {
      return "disk" + std::to_string(disk / MB) + "MB/" + mode;
    };
    auto& g = sweep.grid();
    points.push_back(
        {disk,
         g.add(tag("common"),
               [disk] { return run_case(disk, PlacementStrategy::kNoPartitionCommon, false); }),
         g.add(tag("pre"),
               [disk] { return run_case(disk, PlacementStrategy::kPrePartitionRemote, false); }),
         g.add(tag("rt-noevict"),
               [disk] { return run_case(disk, PlacementStrategy::kRealTime, false); }),
         g.add(tag("rt-evict"),
               [disk] { return run_case(disk, PlacementStrategy::kRealTime, true); })});
  }
  sweep.run();

  for (const auto& p : points) {
    const auto& common = sweep.report(p.common);
    const auto& pre = sweep.report(p.pre);
    const auto& rt_no = sweep.report(p.rt_no);
    const auto& rt_ev = sweep.report(p.rt_ev);
    table.add_row({std::to_string(p.disk / MB) + " MB", cell(common), cell(pre), cell(rt_no),
                   cell(rt_ev)});
    csv.add_row_nums({static_cast<double>(p.disk / MB),
                      static_cast<double>(common.units_completed),
                      static_cast<double>(pre.units_completed),
                      static_cast<double>(rt_no.units_completed),
                      static_cast<double>(rt_ev.units_completed)});
  }
  table.add_note("no-partition-common needs the full 400 MB per node; pre-partitioning "
                 "needs the ~200 MB share; real-time with eviction completes everywhere "
                 "the disk holds a few working-set units");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_capacity.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
