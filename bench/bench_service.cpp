// EXP-S1 — Open-loop service mode: latency percentiles under sustained load.
//
// Every other bench submits a closed batch and reads one makespan.  This one
// runs FRIEDA as a long-lived service: a Poisson arrival process injects
// BLAST queries at a configured rate, and the report's sojourn percentiles
// (arrival -> completion) and sustained throughput are the headline metrics.
// The sweep crosses arrival rate x placement strategy x elasticity policy:
// `fixed` keeps the initial 4-VM fleet, `reactive` lets the queue-depth
// policy provision up to 4 extra VMs and drain them when the backlog clears.
//
// With 16 cores at ~8.16 s mean per query the fixed fleet saturates near
// 1.96 units/s: below that the policies tie, above it the fixed fleet's p99
// diverges while the reactive one holds the tail by scaling out.
// `--timeline out.csv` switches to a single probed run instead of the grid:
// a TelemetryProbe samples the busiest reactive cell (rate 2.5, real-time)
// on a 5 s sim-clock interval and the sampled series lands in `out.csv` as
// channel,t_s,value rows — deterministic, so repeated runs are bit-identical.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exp/grid.hpp"
#include "obs/telemetry.hpp"
#include "workload/arrivals.hpp"
#include "workload/scenarios.hpp"

using namespace frieda;
using namespace frieda::workload;
using core::PlacementStrategy;

namespace {

PaperScenarioOptions service_opt(double scale, double rate, bool reactive) {
  PaperScenarioOptions opt;
  opt.scale = scale;
  opt.service.open_loop = true;
  opt.service.arrivals.kind = ArrivalKind::kPoisson;
  opt.service.arrivals.rate = rate;
  opt.service.arrivals.seed = 42;  // same arrival stream for every cell at a rate
  if (reactive) {
    opt.service.elastic.enabled = true;
    opt.service.elastic.scale_out_depth = 16;
    opt.service.elastic.scale_in_depth = 2;
    opt.service.elastic.check_interval = 5.0;
    opt.service.elastic.hysteresis = 2;
    opt.service.elastic.max_extra_vms = 4;
  }
  return opt;
}

/// `--timeline` mode: one probed run of the busiest reactive cell.  The
/// probe rides the sim clock, so the sampled series — and the CSV written
/// from it — is bit-identical across repeated runs and any sweep/thread
/// configuration (the run never enters the sweep engine at all).
int run_timeline(double scale, const std::string& out_path) {
  PaperScenarioOptions opt = service_opt(0.02, 2.5, /*reactive=*/true);
  opt.scale = scale;

  obs::TelemetryOptions topt;
  topt.interval = 5.0;  // one sample per elasticity check interval
  topt.slo.push_back({"latency_p99", 60.0});
  topt.slo.push_back({"queue_depth", 32.0});
  obs::TelemetryProbe probe(topt);
  opt.telemetry = &probe;

  const auto report = run_blast(core::PlacementStrategy::kRealTime, opt);
  probe.write_timeline_csv(out_path);

  const bool has_latency = report.latency.count() > 0;
  std::printf("service timeline: rate 2.5, real-time, reactive (%zu queries)\n",
              report.units_completed);
  std::printf("  makespan %.2f s, p99 %.2f s, tput %.3f/s, scale +%llu/-%llu\n",
              report.makespan(), has_latency ? report.latency_p(99.0) : 0.0,
              report.sustained_throughput(),
              static_cast<unsigned long long>(report.scale_outs),
              static_cast<unsigned long long>(report.scale_ins));
  std::printf("  %zu channels, %zu samples -> %s\n", probe.series().channels().size(),
              probe.series().sample_count(), out_path.c_str());
  std::printf("%s", probe.slo().summary().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.02;  // 150 BLAST queries per cell
  std::string timeline_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (!std::strcmp(argv[i], "--scale")) scale = std::strtod(argv[i + 1], nullptr);
    if (!std::strcmp(argv[i], "--timeline")) timeline_path = argv[i + 1];
  }
  if (!timeline_path.empty()) return run_timeline(scale, timeline_path);

  const std::vector<double> rates = {0.5, 1.0, 1.75, 2.5, 4.0};
  const std::vector<std::pair<const char*, PlacementStrategy>> strategies = {
      {"real-time", PlacementStrategy::kRealTime},
      {"remote-read", PlacementStrategy::kRemoteRead},
  };

  TextTable table("Service mode: BLAST under Poisson arrivals (" +
                      std::to_string(static_cast<int>(7500 * scale)) +
                      " queries, 4 VMs x 4 cores, seconds)",
                  {"rate", "strategy", "policy", "p50", "p95", "p99", "tput/s", "scale +/-"});
  CsvWriter csv({"arrival_rate", "strategy", "policy", "latency_p50_s", "latency_p95_s",
                 "latency_p99_s", "sustained_tput", "makespan_s", "completed", "scale_outs",
                 "scale_ins"});

  exp::ScenarioSweep sweep;
  struct Cell {
    double rate;
    const char* strategy;
    const char* policy;
    exp::JobId job;
  };
  std::vector<Cell> cells;
  for (const double rate : rates) {
    for (const auto& [sname, strategy] : strategies) {
      for (const bool reactive : {false, true}) {
        const char* policy = reactive ? "reactive" : "fixed";
        const auto tag = "service/" + std::string(sname) + "/" + policy + "@rate" +
                         TextTable::num(rate, 2);
        cells.push_back({rate, sname, policy,
                         sweep.grid().add_blast(strategy, service_opt(scale, rate, reactive),
                                                tag)});
      }
    }
  }
  sweep.run();

  for (const auto& c : cells) {
    const auto& r = sweep.report(c.job);
    const bool has_latency = r.latency.count() > 0;
    const double p50 = has_latency ? r.latency_p(50.0) : 0.0;
    const double p95 = has_latency ? r.latency_p(95.0) : 0.0;
    const double p99 = has_latency ? r.latency_p(99.0) : 0.0;
    table.add_row({TextTable::num(c.rate, 2), c.strategy, c.policy, bench::secs(p50),
                   bench::secs(p95), bench::secs(p99),
                   TextTable::num(r.sustained_throughput(), 3),
                   std::to_string(r.scale_outs) + "/" + std::to_string(r.scale_ins)});
    csv.add_row({TextTable::num(c.rate, 2), c.strategy, c.policy, TextTable::num(p50, 4),
                 TextTable::num(p95, 4), TextTable::num(p99, 4),
                 TextTable::num(r.sustained_throughput(), 4),
                 TextTable::num(r.makespan(), 4), std::to_string(r.units_completed),
                 std::to_string(r.scale_outs), std::to_string(r.scale_ins)});
  }
  table.add_note("below ~1.96 units/s (16 cores / 8.16 s) the policies tie; above it the "
                 "fixed fleet's tail diverges and the reactive policy holds it");
  table.add_note("reactive = scale-out at queue depth 16, drain-and-release at 2, "
                 "5 s checks, hysteresis 2, max 4 extra VMs");
  std::printf("%s", table.to_string().c_str());
  bench::try_save(csv, "ablation_service.csv");
  bench::print_sweep_stats(sweep);
  return 0;
}
